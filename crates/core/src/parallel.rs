//! The parallel execution engine: worker pool, Compute/Gather task
//! scheduling, message-table registry, and the three scheduling policies of
//! paper §V-E (Sync, Async, AsyncP).
//!
//! The master thread owns all scheduling state; workers are dumb statement
//! runners, each holding its own engine connection (the paper's "each thread
//! opens a new connection with the target database engine").
//!
//! ## Fault recovery
//!
//! Task failures are classified by [`SqloopError::is_retryable`]. A task
//! that fails transiently (connection drop, lock timeout) is **replayed**:
//! the worker reports the index of the failed statement along with the
//! partial results, and the master re-dispatches the task resuming at that
//! statement, up to [`SqloopConfig::task_retries`] replays. Resuming at the
//! failed statement (rather than rerunning the whole task) is what keeps
//! replay safe for the one non-idempotent statement in a Compute task — the
//! final delta-advancing UPDATE — because a failed statement surfaced its
//! error before taking effect. Workers that lose their engine connection
//! reconnect under the configured retry policy before running the next
//! task. When the replay budget is exhausted the scheduler aborts with
//! [`SqloopError::Task`]; the facade then optionally downgrades the run to
//! the single-threaded executor (see `api.rs`).

use crate::analysis::ParallelPlan;
use crate::checkpoint::{
    check_fingerprint, dump_table_sql, load_latest_recovering, restore_table_sql, run_fingerprint,
    trace_checkpoint, Checkpointer, LoopSnapshot, PartSnap,
};
use crate::common::{
    create_cte_table, refresh_delta_snapshot, run, run_query, CteNames, CteSchema, DeltaRefresher,
    PlanCacheProbe, TerminationProbe,
};
use crate::config::{ExecutionMode, SqloopConfig};
use crate::error::{SqloopError, SqloopResult};
use crate::grammar::{IterativeCte, Termination};
use crate::parallel_sql::SqlGen;
use crate::progress::{ProgressSample, RecoveryCounters, Sampler};
use crate::single::RunOutcome;
use crate::supervisor::{now_us, panic_detail, HeartbeatSlot, SupervisorMetrics, STATE_BUSY};
use crate::translate::{translate_query_to_sql, translate_sql};
use crate::watchdog::{Governance, Watchdog};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dbcp::{CancelToken, Connection, Driver, PipelineStep, PreparedStatement, RetryPolicy};
use obs::{EventKind, Span, SpanKind, SpanOutcome, TraceHandle};
use sqldb::{DataType, DbError, Row, StmtOutput, Value};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Report of one parallel run.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Result and iteration counts.
    pub outcome: RunOutcome,
    /// Compute tasks executed.
    pub computes: u64,
    /// Gather tasks executed.
    pub gathers: u64,
    /// Non-empty message tables created.
    pub messages: u64,
    /// Aggregate worker time spent executing tasks. On a multi-core host,
    /// `worker_busy / wall` approaches the worker-thread count; on this
    /// reproduction's single-CPU substrate it stays near 1 however many
    /// threads run (see EXPERIMENTS.md).
    pub worker_busy: std::time::Duration,
    /// Convergence samples (when a sampler was configured).
    pub samples: Vec<ProgressSample>,
    /// What fault recovery had to do (all zero on a clean run).
    pub recovery: RecoveryCounters,
    /// Path of the last checkpoint written (when checkpointing is on).
    pub checkpoint: Option<PathBuf>,
    /// Human-readable note when resume had to fall back past corrupt or
    /// unreadable snapshots (`None` on a clean load or a fresh run).
    pub recovery_note: Option<String>,
}

#[derive(Debug, Clone)]
enum TaskKind {
    Compute { msg_table: String },
    Gather { read_until: usize },
}

#[derive(Debug, Clone)]
struct Task {
    /// Scheduler-unique dispatch id, assigned at dispatch time. The
    /// supervisor keys its in-flight map by it, so a result coming back
    /// from an abandoned worker (whose task was replayed under a new id)
    /// can be recognized and discarded.
    task_id: u64,
    partition: usize,
    kind: TaskKind,
    stmts: Vec<String>,
    /// Scheduler round/wave the task was built in (1-based; trace only).
    round: u64,
    /// 1-based attempt number of this dispatch.
    attempt: u32,
    /// Replay resume point: the worker executes `stmts[start_at..]`.
    start_at: usize,
    /// Statements below this index are scratch maintenance (message-slot
    /// `DELETE`/`INSERT`) whose affected-row counts must NOT feed the
    /// convergence delta; only `stmts[changed_from..]` contribute to
    /// [`Done::changed`].
    changed_from: usize,
    /// Changed-row count accumulated by earlier attempts' statements.
    acc_changed: u64,
    /// `Rows` outputs accumulated by earlier attempts' statements.
    acc_rows: Vec<sqldb::QueryResult>,
}

#[derive(Debug)]
struct Done {
    /// The task itself, returned so a failed one can be replayed.
    task: Task,
    /// Rows changed by this attempt's statements.
    changed: u64,
    /// `Rows` outputs of this attempt's statements, in order (a full
    /// Compute: the message-row count, then the touched-partition list
    /// when routing).
    rows_outputs: Vec<sqldb::QueryResult>,
    elapsed: std::time::Duration,
    /// `(failed statement index, error)` — the statement at that index
    /// did not take effect.
    error: Option<(usize, SqloopError)>,
    /// Engine reconnects this worker performed while running the task.
    reconnects: u32,
}

#[derive(Debug, Clone)]
struct PartState {
    pending: bool,
    cursor: usize,
    in_flight: bool,
    computes: u64,
    msg_seq: u64,
    priority: f64,
    /// Strict Gather→Compute alternation (paper Fig. 3): set after a
    /// Gather so the next visit runs the Compute instead of re-gathering.
    prefer_compute: bool,
    /// Round bookkeeping for the blind Async scheduler.
    round_gathered: bool,
    /// See [`PartState::round_gathered`].
    round_computed: bool,
}

#[derive(Debug)]
struct MsgState {
    name: String,
    /// Partition that produced the message — the slot returns to this
    /// partition's free list once every reader has consumed it.
    partition: usize,
    live: bool,
    /// Destination partitions with matching rows (`None` = broadcast).
    targets: Option<Vec<usize>>,
}

/// Runs a parallelizable iterative CTE with the configured scheduler.
///
/// # Errors
/// Engine/translation errors from any task (after the configured replay
/// budget), configuration errors, or the `max_iterations` safety cap.
pub fn run_iterative_parallel(
    driver: &Arc<dyn Driver>,
    cte: &IterativeCte,
    plan: ParallelPlan,
    config: &SqloopConfig,
) -> SqloopResult<ParallelRun> {
    run_iterative_parallel_traced(driver, cte, plan, config).0
}

/// Like [`run_iterative_parallel`], but also returns the recovery counters
/// when the run *fails* — a `ParallelRun` never materializes on that path,
/// yet the downgrade report still wants to show what recovery attempted.
pub fn run_iterative_parallel_traced(
    driver: &Arc<dyn Driver>,
    cte: &IterativeCte,
    plan: ParallelPlan,
    config: &SqloopConfig,
) -> (SqloopResult<ParallelRun>, RecoveryCounters) {
    run_iterative_parallel_observed(driver, cte, plan, config, &TraceHandle::disabled())
}

/// Like [`run_iterative_parallel_traced`], recording spans (one per
/// Compute/Gather task attempt) and events (retries, reconnects, faults,
/// round boundaries) into `trace`. With a disabled handle the
/// instrumentation costs one branch per would-be record.
pub fn run_iterative_parallel_observed(
    driver: &Arc<dyn Driver>,
    cte: &IterativeCte,
    plan: ParallelPlan,
    config: &SqloopConfig,
    trace: &TraceHandle,
) -> (SqloopResult<ParallelRun>, RecoveryCounters) {
    let mut recovery = RecoveryCounters::default();
    let result = run_parallel_inner(driver, cte, plan, config, &mut recovery, trace);
    (result, recovery)
}

/// Drops everything partitioning may have created. Every drop is
/// `IF EXISTS` (errors ignored), so this is safe however far setup got.
fn drop_setup_artifacts(main: &mut dyn Connection, names: &CteNames, partitions: usize) {
    let _ = run(main, &format!("DROP VIEW IF EXISTS {}", names.table));
    let _ = run(main, &format!("DROP TABLE IF EXISTS {}", names.table));
    let _ = run(main, &format!("DROP TABLE IF EXISTS {}", names.mjoin()));
    let _ = run(
        main,
        &format!("DROP TABLE IF EXISTS {}", names.delta_snapshot()),
    );
    for x in 0..partitions {
        let _ = run(
            main,
            &format!("DROP TABLE IF EXISTS {}", names.partition(x)),
        );
    }
}

/// Builds the partitioned table layout: either from the seed query (fresh
/// run) or from a checkpoint's table dumps (`resume`), ending in the same
/// state — partition tables, the union view `R`, `Rmjoin` + index, and a
/// delta snapshot when the termination condition reads one.
fn parallel_setup(
    main: &mut dyn Connection,
    cte: &IterativeCte,
    plan: ParallelPlan,
    config: &SqloopConfig,
    names: &CteNames,
    resume: Option<&LoopSnapshot>,
) -> SqloopResult<Arc<SqlGen>> {
    if let Some(snap) = resume {
        // schema from the dumped partition-0 columns (hidden bookkeeping
        // columns excluded) — the seed query never runs on resume
        let p0 = names.partition(0);
        let dump0 = snap.tables.iter().find(|t| t.name == p0).ok_or_else(|| {
            SqloopError::Checkpoint(format!("snapshot holds no table named {p0}"))
        })?;
        let visible: Vec<_> = dump0
            .columns
            .iter()
            .filter(|c| !c.name.starts_with("__"))
            .collect();
        let schema = CteSchema {
            columns: visible.iter().map(|c| c.name.clone()).collect(),
            types: visible.iter().map(|c| c.data_type).collect(),
        };
        let gen = Arc::new(SqlGen::new(
            names.clone(),
            schema,
            plan,
            config.partitions,
            config.materialize_join,
        ));
        // stale state from the interrupted run (same database) goes first
        let _ = run(main, &format!("DROP VIEW IF EXISTS {}", names.table));
        let _ = run(main, &format!("DROP TABLE IF EXISTS {}", names.table));
        for t in &snap.tables {
            restore_table_sql(main, t, config.insert_batch_rows)?;
        }
        run(main, &gen.create_view_sql())?;
        if config.materialize_join {
            run(main, &format!("DROP TABLE IF EXISTS {}", names.mjoin()))?;
            run(main, &gen.create_mjoin_sql())?;
        }
        let _ = run(main, &gen.join_index_sql());
        if cte.termination.needs_delta_snapshot()
            && !snap.tables.iter().any(|t| t.name == names.delta_snapshot())
        {
            refresh_delta_snapshot(main, names)?;
        }
        return Ok(gen);
    }

    let schema = create_cte_table(main, &cte.name, &cte.columns, &cte.seed, true, true)?;
    let gen = Arc::new(SqlGen::new(
        names.clone(),
        schema,
        plan,
        config.partitions,
        config.materialize_join,
    ));

    // Rmjoin while R is still a base table (paper §V-B), plus the join index
    if config.materialize_join {
        run(main, &format!("DROP TABLE IF EXISTS {}", names.mjoin()))?;
        run(main, &gen.create_mjoin_sql())?;
    }
    // the index may already exist from a previous run on the edge table
    let _ = run(main, &gen.join_index_sql());

    // hash-partition R on Rid, middleware-side
    let col_list = gen.schema().columns.join(", ");
    let rows = run_query(main, &format!("SELECT {col_list} FROM {}", names.table))?.rows;
    let mut buckets: Vec<Vec<Row>> = vec![Vec::new(); config.partitions];
    for row in rows {
        let b = gen.bucket(&row[0]);
        buckets[b].push(row);
    }
    for (x, bucket) in buckets.iter().enumerate() {
        run(
            main,
            &format!("DROP TABLE IF EXISTS {}", names.partition(x)),
        )?;
        run(main, &gen.create_partition_sql(x))?;
        for chunk in bucket.chunks(config.insert_batch_rows) {
            run(main, &gen.insert_partition_sql(x, chunk))?;
        }
        if let Some(sql) = gen.init_hidden_sql(x) {
            run(main, &sql)?;
        }
    }
    // R becomes the union view (paper §V-B)
    run(main, &format!("DROP TABLE {}", names.table))?;
    run(main, &gen.create_view_sql())?;
    if cte.termination.needs_delta_snapshot() {
        refresh_delta_snapshot(main, names)?;
    }
    Ok(gen)
}

fn run_parallel_inner(
    driver: &Arc<dyn Driver>,
    cte: &IterativeCte,
    plan: ParallelPlan,
    config: &SqloopConfig,
    recovery_out: &mut RecoveryCounters,
    trace: &TraceHandle,
) -> SqloopResult<ParallelRun> {
    config.validate().map_err(SqloopError::Config)?;
    // governance: apply the engine memory budget for the whole run (the
    // governed-abort path lifts it again before the final checkpoint) and
    // push the statement deadline onto every connection the run opens
    if config.max_mem.is_some() {
        driver.set_memory_limit(config.max_mem);
    }
    let lift_mem = || {
        driver.set_memory_limit(None);
    };
    let mut main = driver.connect()?;
    if config.statement_timeout.is_some() {
        main.set_statement_timeout(config.statement_timeout)?;
    }
    let names = CteNames::new(&cte.name);

    let fingerprint = run_fingerprint(cte, config.mode.label(), config.partitions);
    let mut recovery_note: Option<String> = None;
    let resume_snap = match &config.resume_from {
        Some(path) => {
            let recovered = load_latest_recovering(path)?;
            let snap = recovered.snapshot;
            recovery_note = recovered.note;
            check_fingerprint(&snap, fingerprint, config.mode.label())?;
            if snap.parts.len() != config.partitions {
                return Err(SqloopError::Checkpoint(format!(
                    "snapshot carries {} partition states but this run has {} partitions",
                    snap.parts.len(),
                    config.partitions
                )));
            }
            Some(snap)
        }
        None => None,
    };
    // fail before any table exists when the checkpoint dir is unusable
    let mut checkpointer = match &config.checkpoint {
        Some(ck) => Some(Checkpointer::new(ck.clone())?),
        None => None,
    };

    // the master connection's recurring statements, prepared once at plan
    // time and executed as handles every round: the termination probe, the
    // in-place delta refresh, and one priority query per partition
    let profile = main.profile();
    let probe = TerminationProbe::new(&cte.name, &cte.termination, profile)?;
    let refresher = cte
        .termination
        .needs_delta_snapshot()
        .then(|| DeltaRefresher::new(&names, profile))
        .transpose()?;
    let prio_stmts = match &config.priority {
        Some(spec) => (0..config.partitions)
            .map(|x| {
                Ok(PreparedStatement::new(translate_sql(
                    &spec.query_for(&names.partition(x)),
                    profile,
                )?))
            })
            .collect::<SqloopResult<Vec<_>>>()?,
        None => Vec::new(),
    };

    let gen = match parallel_setup(
        main.as_mut(),
        cte,
        plan,
        config,
        &names,
        resume_snap.as_ref(),
    ) {
        Ok(gen) => gen,
        Err(e) => {
            // a half-built layout must not leak into the catalog
            if !config.keep_artifacts {
                drop_setup_artifacts(main.as_mut(), &names, config.partitions);
            }
            return Err(e);
        }
    };
    let start_round = resume_snap.as_ref().map(|s| s.round).unwrap_or(0);
    if let Some(snap) = &resume_snap {
        trace.event(
            EventKind::Resume,
            None,
            Some(start_round),
            format!("resumed {} run at round {start_round}", snap.mode),
        );
    }
    let part_cols: Vec<(String, DataType)> = gen
        .schema()
        .columns
        .iter()
        .cloned()
        .zip(gen.schema().types.iter().copied())
        .chain(
            gen.hidden_columns()
                .into_iter()
                .map(|c| (c.to_string(), DataType::Float)),
        )
        .collect();

    // convergence sampler
    let sampler = match (&config.sample_interval, &config.progress_query) {
        (Some(iv), Some(q)) => Some(Sampler::start(
            driver.connect()?,
            q.replace("{}", &cte.name),
            *iv,
        )),
        _ => None,
    };

    // worker pool: one connection per thread, opened lazily inside the
    // worker under a retry policy — a refused connect becomes a retryable
    // task failure instead of aborting the whole run before it starts.
    // The pool keeps its own ends of both channels so it can mint
    // replacement workers for abandoned ones mid-run.
    let (task_tx, task_rx) = unbounded::<Task>();
    let (done_tx, done_rx) = unbounded::<Done>();
    let mut pool = WorkerPool::new(driver, config, trace, task_rx, done_tx);
    for _ in 0..config.threads {
        pool.spawn_worker()?;
    }

    let parts = match &resume_snap {
        Some(snap) => snap
            .parts
            .iter()
            .map(|p| PartState {
                pending: p.pending,
                cursor: 0,
                in_flight: false,
                computes: p.computes,
                msg_seq: p.msg_seq,
                priority: 0.0,
                prefer_compute: p.prefer_compute,
                round_gathered: false,
                round_computed: false,
            })
            .collect(),
        None => vec![
            PartState {
                pending: true,
                cursor: 0,
                in_flight: false,
                computes: 0,
                msg_seq: 0,
                priority: 0.0,
                prefer_compute: false,
                round_gathered: false,
                round_computed: false,
            };
            config.partitions
        ],
    };
    let sup = pool.sup.clone();
    let npartitions = parts.len();
    let mut scheduler = Scheduler {
        gen: &gen,
        config,
        tc: &cte.termination,
        main: main.as_mut(),
        task_tx: &task_tx,
        done_rx: &done_rx,
        pool: &mut pool,
        dispatched: HashMap::new(),
        next_task_id: 1,
        sup,
        parts,
        msgs: Vec::new(),
        in_flight: 0,
        computes: 0,
        gathers: 0,
        messages: 0,
        rr: 0,
        all_msgs: Vec::new(),
        free_slots: vec![Vec::new(); npartitions],
        slots_created: vec![0; npartitions],
        needs_delta: cte.termination.needs_delta_snapshot(),
        probe,
        refresher,
        prio_stmts,
        worker_busy: std::time::Duration::ZERO,
        retries: 0,
        reconnects: 0,
        task_failures: 0,
        worker_panics: 0,
        stalls: 0,
        replacements: 0,
        aborting: false,
        trace,
        cache_probe: PlanCacheProbe::new(),
        round: start_round + 1,
        cancel: &config.cancel,
        checkpointer,
        fingerprint,
        part_cols,
        start_round,
        cancelled: false,
        governance: Governance {
            watchdog: config
                .watchdog
                .is_active()
                .then(|| Watchdog::new(config.watchdog, &cte.termination)),
            lift_mem: Some(&lift_mem),
        },
    };

    let sched_result = match config.mode {
        ExecutionMode::Sync => scheduler.run_sync(),
        ExecutionMode::Async | ExecutionMode::AsyncPrio => scheduler.run_async(),
        ExecutionMode::Single => Err(SqloopError::Config(
            "single mode must use the single-threaded executor".into(),
        )),
    };
    let mut stats = SchedStats {
        computes: scheduler.computes,
        gathers: scheduler.gathers,
        messages: scheduler.messages,
        worker_busy: scheduler.worker_busy,
        all_msgs: std::mem::take(&mut scheduler.all_msgs),
        recovery: RecoveryCounters {
            task_retries: scheduler.retries,
            worker_reconnects: scheduler.reconnects,
            task_failures: scheduler.task_failures,
            worker_panics: scheduler.worker_panics,
            stalls: scheduler.stalls,
            worker_replacements: scheduler.replacements,
            downgraded: false,
        },
    };
    let was_cancelled = scheduler.cancelled;
    checkpointer = scheduler.checkpointer.take();
    let checkpoint_path = checkpointer
        .as_ref()
        .and_then(|c| c.last_path().map(Path::to_path_buf));
    drop(scheduler);

    // stop workers and collect them; panics that escaped a worker loop
    // surface here as counted recoveries, never silently — and abandoned
    // workers (possibly hung forever) are detached, not joined, so
    // cleanup can't re-wedge a run the supervisor already saved
    drop(task_tx);
    stats.recovery.worker_panics += pool.shutdown();
    *recovery_out = stats.recovery;
    let samples = sampler.map(Sampler::stop).unwrap_or_default();

    let finish = |main: &mut dyn Connection| -> SqloopResult<()> {
        if !config.keep_artifacts {
            for sql in gen.cleanup_sql() {
                let _ = run(main, &sql);
            }
            for m in &stats.all_msgs {
                let _ = run(main, &format!("DROP TABLE IF EXISTS {m}"));
            }
        }
        Ok(())
    };

    match sched_result {
        Ok((rounds, last_change)) => {
            let final_sql = translate_query_to_sql(&cte.final_query, main.profile());
            let result = main.query(&final_sql)?;
            finish(main.as_mut())?;
            Ok(ParallelRun {
                outcome: RunOutcome {
                    result,
                    iterations: rounds,
                    last_change,
                    cancelled: was_cancelled,
                },
                computes: stats.computes,
                gathers: stats.gathers,
                messages: stats.messages,
                worker_busy: stats.worker_busy,
                samples,
                recovery: stats.recovery,
                checkpoint: checkpoint_path,
                recovery_note,
            })
        }
        Err(e) => {
            finish(main.as_mut())?;
            Err(e)
        }
    }
}

struct SchedStats {
    computes: u64,
    gathers: u64,
    messages: u64,
    worker_busy: std::time::Duration,
    all_msgs: Vec<String>,
    recovery: RecoveryCounters,
}

/// Everything one worker thread needs, bundled so replacements are spawned
/// from the same recipe as the initial pool.
struct WorkerCtx {
    driver: Arc<dyn Driver>,
    policy: RetryPolicy,
    rx: Receiver<Task>,
    tx: Sender<Done>,
    worker: u32,
    trace: TraceHandle,
    cancel: CancelToken,
    statement_timeout: Option<std::time::Duration>,
    /// This worker's heartbeat, shared with the supervisor.
    slot: Arc<HeartbeatSlot>,
    /// The pool's clock epoch heartbeats are stamped against.
    epoch: Instant,
    sup: SupervisorMetrics,
}

/// One spawned worker as the supervisor sees it.
struct WorkerHandle {
    id: u32,
    slot: Arc<HeartbeatSlot>,
    handle: std::thread::JoinHandle<()>,
    /// Set when the supervisor gave up on this worker (stall or death
    /// verdict). Abandoned workers are replaced, their task replayed, and
    /// their thread detached at shutdown if it never finished.
    abandoned: bool,
}

/// The run's worker pool: spawns the initial `sqloop-worker-{id}` threads
/// and mints replacements for abandoned ones mid-run. It keeps its own
/// clones of both channel ends so a replacement can be wired up at any
/// time; `shutdown` drops them so idle workers see the task stream end.
struct WorkerPool {
    driver: Arc<dyn Driver>,
    reconnect_attempts: u32,
    retry_backoff: std::time::Duration,
    statement_timeout: Option<std::time::Duration>,
    cancel: CancelToken,
    trace: TraceHandle,
    task_rx: Receiver<Task>,
    done_tx: Sender<Done>,
    /// Clock origin for heartbeat timestamps.
    epoch: Instant,
    sup: SupervisorMetrics,
    workers: Vec<WorkerHandle>,
    next_id: u32,
}

impl WorkerPool {
    fn new(
        driver: &Arc<dyn Driver>,
        config: &SqloopConfig,
        trace: &TraceHandle,
        task_rx: Receiver<Task>,
        done_tx: Sender<Done>,
    ) -> WorkerPool {
        WorkerPool {
            driver: Arc::clone(driver),
            reconnect_attempts: config.reconnect_attempts,
            retry_backoff: config.retry_backoff,
            statement_timeout: config.statement_timeout,
            cancel: config.cancel.clone(),
            trace: trace.clone(),
            task_rx,
            done_tx,
            epoch: Instant::now(),
            sup: SupervisorMetrics::new(),
            workers: Vec::new(),
            next_id: 0,
        }
    }

    /// Spawns a named `sqloop-worker-{id}` thread wired to the pool's
    /// channels; returns its id.
    fn spawn_worker(&mut self) -> SqloopResult<u32> {
        let id = self.next_id;
        self.next_id += 1;
        let slot = Arc::new(HeartbeatSlot::new(now_us(self.epoch)));
        let ctx = WorkerCtx {
            driver: Arc::clone(&self.driver),
            policy: RetryPolicy {
                max_attempts: self.reconnect_attempts,
                base_delay: self.retry_backoff,
                jitter_seed: u64::from(id) + 1,
                ..RetryPolicy::default()
            },
            rx: self.task_rx.clone(),
            tx: self.done_tx.clone(),
            worker: id,
            trace: self.trace.clone(),
            cancel: self.cancel.clone(),
            statement_timeout: self.statement_timeout,
            slot: Arc::clone(&slot),
            epoch: self.epoch,
            sup: self.sup.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("sqloop-worker-{id}"))
            .spawn(move || worker_loop(ctx))
            .map_err(|e| SqloopError::Config(format!("spawn worker: {e}")))?;
        self.workers.push(WorkerHandle {
            id,
            slot,
            handle,
            abandoned: false,
        });
        Ok(id)
    }

    /// True when every non-abandoned worker thread has exited — with tasks
    /// still in flight, that means nobody is left to finish them.
    fn all_live_finished(&self) -> bool {
        let mut any_live = false;
        for w in &self.workers {
            if w.abandoned {
                continue;
            }
            any_live = true;
            if !w.handle.is_finished() {
                return false;
            }
        }
        any_live
    }

    /// Joins the workers and returns how many panicked outside a task body
    /// (the per-task `catch_unwind` makes that rare). Abandoned workers
    /// that never finished — e.g. hung forever inside an injected stall —
    /// are detached instead of joined, so shutdown can't re-wedge a run
    /// the supervisor already saved; their panics (if any) were accounted
    /// by the verdict that abandoned them.
    fn shutdown(self) -> u64 {
        drop(self.task_rx);
        drop(self.done_tx);
        let mut panics = 0u64;
        for w in self.workers {
            if w.abandoned {
                if w.handle.is_finished() {
                    let _ = w.handle.join();
                }
                continue;
            }
            if let Err(payload) = w.handle.join() {
                panics += 1;
                self.sup.panics_caught.inc();
                self.trace.event(
                    EventKind::Panic,
                    None,
                    None,
                    format!(
                        "worker {} panicked outside a task: {}",
                        w.id,
                        panic_detail(payload.as_ref())
                    ),
                );
            }
        }
        panics
    }
}

fn worker_loop(ctx: WorkerCtx) {
    let WorkerCtx {
        driver,
        policy,
        rx,
        tx,
        worker,
        trace,
        cancel,
        statement_timeout,
        slot,
        epoch,
        sup,
    } = ctx;
    let mut conn: Option<Box<dyn Connection>> = None;
    let mut ever_connected = false;
    for task in rx.iter() {
        slot.begin_task(
            now_us(epoch),
            task.task_id,
            task.partition,
            task.round,
            task.start_at,
        );
        let started = std::time::Instant::now();
        let span_start = trace.now_us();
        let mut changed = 0u64;
        let mut rows_outputs = Vec::new();
        let mut error = None;
        let mut reconnects = 0u32;
        let at = task.start_at;
        if conn.is_none() {
            // interruptible reconnect backoff: a cancelled run must not
            // sit out the full exponential wait
            match policy.run_with_cancel(&cancel, |_| driver.connect()) {
                Ok(mut c) => {
                    if ever_connected {
                        reconnects += 1;
                    }
                    ever_connected = true;
                    if statement_timeout.is_some() {
                        let _ = c.set_statement_timeout(statement_timeout);
                    }
                    conn = Some(c);
                    slot.beat(now_us(epoch));
                }
                Err(e) => {
                    error = Some((at, SqloopError::from(e)));
                }
            }
        }
        if error.is_none() {
            match conn.as_mut() {
                Some(c) => {
                    // the remaining statement sequence goes out as ONE
                    // pipelined batch — a single wire round-trip however
                    // many statements the task carries
                    let profile = c.profile();
                    let mut steps = Vec::with_capacity(task.stmts.len() - at);
                    let mut translate_err = None;
                    for (j, stmt) in task.stmts[at..].iter().enumerate() {
                        match translate_sql(stmt, profile) {
                            Ok(sql) => steps.push(PipelineStep::Execute(sql)),
                            Err(e) => {
                                translate_err = Some((at + j, e));
                                break;
                            }
                        }
                    }
                    // the panic boundary: one panicking statement (an
                    // engine bug, an injected chaos panic) must degrade
                    // into a retryable task failure, never take the
                    // process down or wedge the run
                    let pipe = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        c.run_pipeline(&steps)
                    }));
                    match pipe {
                        Ok(Ok(outcome)) => {
                            let executed = outcome.outputs.len();
                            for (i, out) in outcome.outputs.into_iter().enumerate() {
                                match out {
                                    // slot-maintenance DELETE/INSERT counts
                                    // are bookkeeping, not convergence delta
                                    StmtOutput::Affected(n) => {
                                        if at + i >= task.changed_from {
                                            changed += n;
                                        }
                                    }
                                    StmtOutput::Rows(r) => rows_outputs.push(r),
                                    StmtOutput::Done => {}
                                }
                            }
                            // the step at `executed` surfaced its error
                            // before taking effect — replay resumes there;
                            // a dead connection reported with a position
                            // (statement-at-a-time transports know how far
                            // they got) additionally forces a reconnect
                            error = match outcome.error {
                                Some(e) => {
                                    if matches!(e, sqldb::DbError::Connection(_)) {
                                        conn = None;
                                    }
                                    Some((at + executed, SqloopError::from(e)))
                                }
                                None => translate_err,
                            };
                        }
                        Ok(Err(e)) => {
                            // transport failure mid-batch: how far the batch
                            // got is unknown at statement granularity, so
                            // this attempt's outputs are discarded and the
                            // whole remaining sequence replays from `at` —
                            // safe because every statement before a task's
                            // final delta-advancing UPDATE is idempotent
                            // and the UPDATE is always last (it either
                            // never ran, or ran and the batch completed)
                            conn = None;
                            changed = 0;
                            rows_outputs.clear();
                            error = Some((at, SqloopError::from(e)));
                        }
                        Err(payload) => {
                            // a panic unwound through the driver: the
                            // connection's state is unknown, so drop it
                            // (the engine session rolls back and releases
                            // its locks on drop) and report a typed,
                            // retryable WorkerPanic — faults inject before
                            // their statement takes effect, so replaying
                            // from `at` is as safe as any transport replay
                            conn = None;
                            changed = 0;
                            rows_outputs.clear();
                            sup.panics_caught.inc();
                            let detail = panic_detail(payload.as_ref());
                            trace.event(
                                EventKind::Panic,
                                Some(task.partition as u32),
                                Some(task.round),
                                format!("worker {worker} caught a panic: {detail}"),
                            );
                            error = Some((
                                at,
                                SqloopError::WorkerPanic {
                                    worker: Some(worker),
                                    detail,
                                },
                            ));
                        }
                    }
                }
                // unreachable in practice (the branch above just ensured
                // it), but a poisoned worker must degrade into a task
                // failure, not abort the whole process
                None => {
                    error = Some((
                        at,
                        SqloopError::Worker("worker lost its connection unexpectedly".into()),
                    ));
                }
            }
        }
        if trace.is_enabled() {
            trace.span(Span {
                kind: match task.kind {
                    TaskKind::Compute { .. } => SpanKind::Compute,
                    TaskKind::Gather { .. } => SpanKind::Gather,
                },
                partition: Some(task.partition as u32),
                iteration: Some(task.round),
                worker: Some(worker),
                attempt: task.attempt,
                rows: changed,
                outcome: if error.is_some() {
                    SpanOutcome::Failed
                } else {
                    SpanOutcome::Ok
                },
                start_us: span_start,
                end_us: trace.now_us(),
            });
        }
        // completion handshake: exactly one of {this CAS, the supervisor's
        // abandon CAS} wins. Losing means the supervisor already replayed
        // this task on a replacement — sending the result now would apply
        // the round's non-idempotent final UPDATE twice, so discard it and
        // exit (the replacement has this worker's job).
        if !slot.try_complete() {
            sup.zombie_results_dropped.inc();
            return;
        }
        let done = Done {
            task,
            changed,
            rows_outputs,
            elapsed: started.elapsed(),
            error,
            reconnects,
        };
        if tx.send(done).is_err() {
            return;
        }
        slot.finish(now_us(epoch));
    }
}

struct Scheduler<'a> {
    gen: &'a SqlGen,
    config: &'a SqloopConfig,
    tc: &'a Termination,
    main: &'a mut dyn Connection,
    task_tx: &'a Sender<Task>,
    done_rx: &'a Receiver<Done>,
    /// The worker pool: the supervisor inspects heartbeats, abandons stuck
    /// workers and spawns replacements through it.
    pool: &'a mut WorkerPool,
    /// Tasks currently dispatched, keyed by task id — the supervisor's
    /// in-flight map and the zombie-result filter.
    dispatched: HashMap<u64, Task>,
    /// Next scheduler-unique task id.
    next_task_id: u64,
    /// Supervision metrics (shared with the pool's workers).
    sup: SupervisorMetrics,
    parts: Vec<PartState>,
    msgs: Vec<MsgState>,
    in_flight: usize,
    computes: u64,
    gathers: u64,
    messages: u64,
    rr: usize,
    all_msgs: Vec<String>,
    /// Per-partition free lists of reusable message-slot tables. A Compute
    /// pops a slot (creating one only when the list is empty), truncates
    /// and refills it; the slot returns here when its message is consumed.
    /// Steady state: the pool stops growing and every per-round statement
    /// text is byte-identical across rounds, so the engine plan cache
    /// serves them without re-parsing.
    free_slots: Vec<Vec<String>>,
    /// Per-partition count of slots ever created (next slot index).
    slots_created: Vec<usize>,
    needs_delta: bool,
    /// Termination probe, prepared once at plan time.
    probe: TerminationProbe,
    /// Per-round in-place `<R>delta` refresh (`None` when no condition
    /// reads the snapshot).
    refresher: Option<DeltaRefresher>,
    /// One prepared priority query per partition (empty without a spec).
    prio_stmts: Vec<PreparedStatement>,
    worker_busy: std::time::Duration,
    /// Replay dispatches of failed tasks.
    retries: u64,
    /// Worker reconnects reported via [`Done::reconnects`].
    reconnects: u64,
    /// Task failures observed (each failed attempt counts once).
    task_failures: u64,
    /// Worker panics absorbed (caught at the task boundary or dead-thread
    /// verdicts), counted when their failed `Done` is processed.
    worker_panics: u64,
    /// Stall verdicts rendered by the supervisor.
    stalls: u64,
    /// Replacement workers spawned for abandoned ones.
    replacements: u64,
    /// Set on the first unrecoverable task failure: stop replaying, let
    /// the remaining in-flight tasks drain so the run can abort cleanly.
    aborting: bool,
    /// Trace recorder (no-op when tracing is off).
    trace: &'a TraceHandle,
    /// Per-round plan-cache hit/miss attribution, emitted at round ticks.
    cache_probe: PlanCacheProbe,
    /// Current 1-based round/wave, stamped into tasks for the trace.
    round: u64,
    /// Cooperative cancellation, checked at quiesce points and while
    /// dispatching.
    cancel: &'a CancelToken,
    /// Periodic durable snapshots (`None` = checkpointing off).
    checkpointer: Option<Checkpointer>,
    /// [`run_fingerprint`] of this run, stamped into every snapshot.
    fingerprint: u64,
    /// Full partition-table column list (declared + hidden), for dumps.
    part_cols: Vec<(String, DataType)>,
    /// Completed rounds carried over from a resumed checkpoint.
    start_round: u64,
    /// Set when the run stopped at a cancellation point.
    cancelled: bool,
    /// Resource governance: watchdog state and the memory-limit lift hook
    /// used by governed aborts.
    governance: Governance<'a>,
}

impl Scheduler<'_> {
    // -- task construction -------------------------------------------------

    fn build_compute(&mut self, x: usize) -> Task {
        // msg_seq stays a per-partition Compute ordinal (checkpointed for
        // format stability) but no longer names the message table: slots
        // have generation-stable names, so the statement texts below are
        // byte-identical every round and stay hot in the plan cache.
        self.parts[x].msg_seq += 1;
        let mut stmts = Vec::with_capacity(6);
        let msg = match self.free_slots[x].pop() {
            Some(slot) => {
                stmts.push(self.gen.clear_message_slot_sql(&slot));
                slot
            }
            None => {
                let k = self.slots_created[x];
                self.slots_created[x] += 1;
                let slot = self.gen.names().message_slot(x, k);
                self.all_msgs.push(slot.clone());
                // a crashed earlier run may have left the table behind;
                // replays resume at the failed statement, so neither DDL
                // re-runs after it succeeded
                stmts.push(format!("DROP TABLE IF EXISTS {slot}"));
                stmts.push(self.gen.create_message_slot_sql(&slot));
                slot
            }
        };
        stmts.push(self.gen.insert_message_sql(x, &msg));
        stmts.push(self.gen.message_count_sql(&msg));
        if self.gen.routing_enabled() {
            stmts.push(self.gen.touched_partitions_sql(&msg));
        }
        let changed_from = stmts.len();
        stmts.push(self.gen.compute_update_sql(x));
        Task {
            task_id: 0, // assigned at dispatch
            partition: x,
            kind: TaskKind::Compute { msg_table: msg },
            stmts,
            round: self.round,
            attempt: 1,
            start_at: 0,
            changed_from,
            acc_changed: 0,
            acc_rows: Vec::new(),
        }
    }

    /// Unread live message tables for `x`; advances the cursor over dead
    /// prefixes. `None` when there is nothing to read.
    fn build_gather(&mut self, x: usize) -> Option<Task> {
        let len = self.msgs.len();
        let mut tables: Vec<&str> = self.msgs[self.parts[x].cursor..len]
            .iter()
            .filter(|m| m.live && m.targets.as_ref().map(|t| t.contains(&x)).unwrap_or(true))
            .map(|m| m.name.as_str())
            .collect();
        // canonical order: worker completion order varies run to run, but
        // the slot SET is stable — sorting makes the gather text
        // generation-stable so it stays hot in the plan cache too
        tables.sort_unstable();
        if tables.is_empty() {
            self.parts[x].cursor = len;
            return None;
        }
        let sql = self.gen.gather_sql(x, &tables);
        Some(Task {
            task_id: 0, // assigned at dispatch
            partition: x,
            kind: TaskKind::Gather { read_until: len },
            stmts: vec![sql],
            round: self.round,
            attempt: 1,
            start_at: 0,
            changed_from: 0,
            acc_changed: 0,
            acc_rows: Vec::new(),
        })
    }

    fn dispatch(&mut self, mut task: Task) -> SqloopResult<()> {
        task.task_id = self.next_task_id;
        self.next_task_id += 1;
        self.parts[task.partition].in_flight = true;
        self.in_flight += 1;
        self.dispatched.insert(task.task_id, task.clone());
        self.task_tx
            .send(task)
            .map_err(|_| SqloopError::Worker("worker pool shut down unexpectedly".into()))
    }

    /// Receives the next completion, supervising the pool while waiting.
    ///
    /// This replaces every bare `recv()` on the scheduler's barrier paths:
    /// the wait is bounded by `supervisor_poll`, and each timeout tick runs
    /// a supervision pass over the worker heartbeats, so a panicked or
    /// stalled worker becomes a typed verdict instead of an infinite block.
    /// Completions for tasks no longer in the dispatch map (a worker that
    /// lost the completion race but still had its `Done` buffered) are
    /// discarded.
    fn recv_done(&mut self) -> SqloopResult<Done> {
        loop {
            match self.done_rx.recv_timeout(self.config.supervisor_poll) {
                Ok(d) => {
                    if !self.dispatched.contains_key(&d.task.task_id) {
                        self.sup.zombie_results_dropped.inc();
                        continue;
                    }
                    return Ok(d);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(d) = self.supervise()? {
                        return Ok(d);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // the pool holds a sender clone for replacements, so
                    // this can only mean the pool itself is gone
                    return Err(SqloopError::WorkerPanic {
                        worker: None,
                        detail: format!(
                            "every worker exited with {} task(s) in flight",
                            self.in_flight
                        ),
                    });
                }
            }
        }
    }

    /// One supervision pass over the worker heartbeats.
    ///
    /// A busy worker whose thread has exited (panicked past the task-level
    /// `catch_unwind`) or whose heartbeat has been silent past
    /// `stall_timeout` is abandoned via the completion-race CAS, its task
    /// turned into a synthetic failed [`Done`] (so [`Self::handle_done`]
    /// applies the ordinary replay/budget/abort logic), and a replacement
    /// worker is spawned. Returns that verdict, if any.
    fn supervise(&mut self) -> SqloopResult<Option<Done>> {
        if self.in_flight == 0 {
            return Ok(None);
        }
        let now = now_us(self.pool.epoch);
        let stall_us = self.config.stall_timeout.map(|t| t.as_micros() as u64);
        for i in 0..self.pool.workers.len() {
            let (worker_id, task_id, dead, silent_us) = {
                let w = &self.pool.workers[i];
                if w.abandoned || w.slot.state() != STATE_BUSY {
                    continue;
                }
                let dead = w.handle.is_finished();
                let silent = now.saturating_sub(w.slot.beat_us());
                (w.id, w.slot.task_id(), dead, silent)
            };
            let stalled = !dead && stall_us.map(|t| silent_us > t).unwrap_or(false);
            if !dead && !stalled {
                continue;
            }
            // the completion race: if the worker sends its Done first, the
            // CAS fails and this verdict is void — take the real result
            if !self.pool.workers[i].slot.try_abandon() {
                continue;
            }
            self.pool.workers[i].abandoned = true;
            let Some(task) = self.dispatched.remove(&task_id) else {
                // raced with a completion already consumed; nothing to
                // replay, but the worker is gone — replace it below
                self.pool.spawn_worker()?;
                self.replacements += 1;
                self.sup.worker_replacements.inc();
                continue;
            };
            let e = if dead {
                self.sup.panics_caught.inc();
                self.trace.event(
                    EventKind::Panic,
                    Some(task.partition as u32),
                    Some(task.round),
                    format!("worker {worker_id} thread exited mid-task"),
                );
                SqloopError::WorkerPanic {
                    worker: Some(worker_id),
                    detail: "worker thread exited mid-task".into(),
                }
            } else {
                self.stalls += 1;
                self.sup.stalls_detected.inc();
                self.trace.event(
                    EventKind::Stall,
                    Some(task.partition as u32),
                    Some(task.round),
                    format!(
                        "worker {worker_id} heartbeat silent for {}ms — abandoning",
                        silent_us / 1000
                    ),
                );
                SqloopError::WorkerStalled {
                    worker: worker_id,
                    partition: task.partition,
                    waited_ms: silent_us / 1000,
                }
            };
            let replacement = self.pool.spawn_worker()?;
            self.replacements += 1;
            self.sup.worker_replacements.inc();
            self.trace.event(
                EventKind::Replace,
                Some(task.partition as u32),
                Some(task.round),
                format!("spawned worker {replacement} to replace {worker_id}"),
            );
            let failed_at = task.start_at;
            return Ok(Some(Done {
                task,
                changed: 0,
                rows_outputs: Vec::new(),
                elapsed: std::time::Duration::ZERO,
                error: Some((failed_at, e)),
                reconnects: 0,
            }));
        }
        if self.pool.all_live_finished() {
            return Err(SqloopError::WorkerPanic {
                worker: None,
                detail: format!(
                    "every worker exited with {} task(s) in flight",
                    self.in_flight
                ),
            });
        }
        Ok(None)
    }

    /// Processes one completion; returns the number of changed rows.
    ///
    /// A failed task whose error is retryable is re-dispatched resuming at
    /// the failed statement (carrying the partial results along), until the
    /// replay budget runs out — then the failure is wrapped as
    /// [`SqloopError::Task`] and the scheduler aborts.
    fn handle_done(&mut self, d: Done) -> SqloopResult<u64> {
        self.dispatched.remove(&d.task.task_id);
        self.in_flight -= 1;
        let x = d.task.partition;
        self.parts[x].in_flight = false;
        self.worker_busy += d.elapsed;
        self.reconnects += u64::from(d.reconnects);
        if self.trace.is_enabled() {
            // one event per reconnect so the trace tally matches
            // RecoveryCounters::worker_reconnects exactly
            for _ in 0..d.reconnects {
                self.trace.event(
                    EventKind::Reconnect,
                    Some(x as u32),
                    Some(d.task.round),
                    "worker reopened its engine connection",
                );
            }
        }
        if let Some((failed_at, e)) = d.error {
            self.task_failures += 1;
            if matches!(e, SqloopError::WorkerPanic { .. }) {
                self.worker_panics += 1;
            }
            self.trace.event(
                EventKind::Fault,
                Some(x as u32),
                Some(d.task.round),
                format!("attempt {} failed at stmt {failed_at}: {e}", d.task.attempt),
            );
            let mut task = d.task;
            task.acc_changed += d.changed;
            task.acc_rows.extend(d.rows_outputs);
            task.start_at = failed_at;
            if e.is_retryable() && task.attempt <= self.config.task_retries && !self.aborting {
                task.attempt += 1;
                self.retries += 1;
                self.trace.event(
                    EventKind::Retry,
                    Some(x as u32),
                    Some(task.round),
                    format!("replaying from stmt {failed_at} (attempt {})", task.attempt),
                );
                self.dispatch(task)?;
                return Ok(0);
            }
            self.aborting = true;
            return Err(SqloopError::Task {
                partition: x,
                attempt: task.attempt,
                source: Box::new(e),
            });
        }
        let Task {
            kind,
            acc_changed,
            mut acc_rows,
            ..
        } = d.task;
        acc_rows.extend(d.rows_outputs);
        let changed = acc_changed + d.changed;
        let mut refresh = false;
        match &kind {
            TaskKind::Compute { msg_table } => {
                self.computes += 1;
                self.parts[x].computes += 1;
                self.parts[x].pending = false;
                self.parts[x].prefer_compute = false;
                let msg_rows = acc_rows
                    .first()
                    .and_then(|r| r.scalar().and_then(Value::as_i64))
                    .unwrap_or(0);
                if msg_rows > 0 {
                    self.messages += 1;
                    // normalize SQL truncating modulo to rem_euclid buckets
                    let n = self.parts.len() as i64;
                    let targets = acc_rows.get(1).map(|r| {
                        let mut t: Vec<usize> = r
                            .rows
                            .iter()
                            .filter_map(|row| row[0].as_i64())
                            .map(|p| (((p % n) + n) % n) as usize)
                            .collect();
                        t.sort_unstable();
                        t.dedup();
                        t
                    });
                    self.msgs.push(MsgState {
                        name: msg_table.clone(),
                        partition: x,
                        live: true,
                        targets,
                    });
                } else {
                    // empty message: hand the slot straight back — no DROP;
                    // the next reuse truncates it with a cached DELETE
                    self.free_slots[x].push(msg_table.clone());
                }
            }
            TaskKind::Gather { read_until } => {
                self.gathers += 1;
                self.parts[x].cursor = *read_until;
                if changed > 0 {
                    self.parts[x].pending = true;
                    self.parts[x].prefer_compute = true;
                    refresh = true;
                }
                self.gc_messages();
            }
        }
        if self.config.mode == ExecutionMode::AsyncPrio && refresh {
            self.refresh_priority(x);
        }
        Ok(changed)
    }

    /// Recycles message slots every partition has consumed (GC; the paper
    /// leaves this implicit). Slots go back to their owner's free list
    /// instead of being dropped — the next Compute truncates and refills
    /// them with statements the plan cache already knows.
    fn gc_messages(&mut self) {
        let min_cursor = self.parts.iter().map(|p| p.cursor).min().unwrap_or(0);
        for i in 0..min_cursor.min(self.msgs.len()) {
            if self.msgs[i].live {
                self.msgs[i].live = false;
                let owner = self.msgs[i].partition;
                let name = self.msgs[i].name.clone();
                self.free_slots[owner].push(name);
            }
        }
    }

    fn refresh_priority(&mut self, x: usize) {
        let spec = match &self.config.priority {
            Some(s) => s,
            None => return,
        };
        let worst = if spec.descending {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        let v = match self.prio_stmts.get_mut(x) {
            Some(stmt) => stmt
                .execute(&mut *self.main, &[])
                .ok()
                .and_then(|out| match out {
                    StmtOutput::Rows(r) => r.scalar().and_then(Value::as_f64),
                    _ => None,
                })
                .unwrap_or(worst),
            None => worst,
        };
        self.parts[x].priority = if v.is_nan() { worst } else { v };
    }

    fn init_priorities(&mut self) {
        if self.config.mode == ExecutionMode::AsyncPrio {
            for x in 0..self.parts.len() {
                self.refresh_priority(x);
            }
        }
    }

    fn tc_check(&mut self, rounds: u64, changed: u64) -> SqloopResult<bool> {
        let done = self.probe.satisfied(&mut *self.main, rounds, changed)?;
        if let Some(r) = self.refresher.as_mut() {
            r.refresh(&mut *self.main)?;
        }
        Ok(done)
    }

    // -- Sync: two-phase rounds with a barrier (paper §V-E) -----------------

    fn run_sync(&mut self) -> SqloopResult<(u64, u64)> {
        let mut rounds = self.start_round;
        loop {
            self.round = rounds + 1;
            // phase 1: every partition computes
            let compute_tasks: Vec<Task> = (0..self.parts.len())
                .map(|x| self.build_compute(x))
                .collect();
            let mut changed = match self.run_phase(compute_tasks.into()) {
                Ok(c) => c,
                Err(e) => return Err(self.fail(e, rounds, 0)),
            };
            self.trace
                .event(EventKind::Barrier, None, Some(self.round), "compute phase");
            // phase 2: every partition with unread messages gathers
            let mut gather_tasks = VecDeque::new();
            for x in 0..self.parts.len() {
                if let Some(t) = self.build_gather(x) {
                    gather_tasks.push_back(t);
                }
            }
            changed += match self.run_phase(gather_tasks) {
                Ok(c) => c,
                Err(e) => return Err(self.fail(e, rounds, changed)),
            };
            self.trace
                .event(EventKind::Barrier, None, Some(self.round), "gather phase");
            rounds += 1;
            if self.trace.is_enabled() {
                self.trace.event(
                    EventKind::Round,
                    None,
                    Some(rounds),
                    format!("{changed} row(s) changed"),
                );
            }
            self.cache_probe
                .tick(self.trace, rounds, self.config.mode.label());
            // a cancelled round ran partially — its (under-counted) change
            // tally must not drive a termination decision
            if !self.cancel.cancelled() && self.tc_check(rounds, changed)? {
                return Ok((rounds, changed));
            }
            // the barrier is the Sync scheduler's natural quiesce point
            if self.check_cancel(rounds, changed)? {
                return Ok((rounds, changed));
            }
            let _ = self.maybe_checkpoint(rounds, changed)?;
            self.watchdog_check(rounds, changed)?;
            if rounds >= self.config.max_iterations {
                return Err(SqloopError::Semantic(format!(
                    "termination condition not satisfied within {rounds} iterations"
                )));
            }
        }
    }

    fn run_phase(&mut self, mut queue: VecDeque<Task>) -> SqloopResult<u64> {
        let mut changed = 0u64;
        let mut first_error: Option<SqloopError> = None;
        loop {
            // a cancelled run stops feeding the phase and drains what is
            // already in flight; check_cancel handles the rest at the
            // round boundary
            while self.in_flight < self.config.threads
                && first_error.is_none()
                && !self.cancel.cancelled()
            {
                match queue.pop_front() {
                    Some(t) => self.dispatch(t)?,
                    None => break,
                }
            }
            if self.in_flight == 0
                && (queue.is_empty() || first_error.is_some() || self.cancel.cancelled())
            {
                return match first_error {
                    Some(e) => Err(e),
                    None => Ok(changed),
                };
            }
            let d = match self.recv_done() {
                Ok(d) => d,
                Err(e) => {
                    // an unrecoverable pool failure (all workers dead)
                    // cannot drain in-flight work — surface it now
                    return Err(first_error.unwrap_or(e));
                }
            };
            match self.handle_done(d) {
                Ok(n) => changed += n,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    }

    // -- Async / AsyncP (paper §V-E) ----------------------------------------

    fn compute_allowed(&self, x: usize) -> bool {
        match self.tc {
            Termination::Iterations(n) => self.parts[x].computes < *n,
            _ => true,
        }
    }

    /// Blind round-robin scheduler (`Async`, paper Fig. 3): every round,
    /// every partition gets a Gather (when unread message tables exist) and
    /// a Compute — no barrier between rounds, so tasks of round *i+1* start
    /// while stragglers of round *i* are still running, and Gathers consume
    /// whatever intermediate results already exist. The speedup over Sync
    /// comes purely from that freshness; like the paper's Async, it does
    /// not skip idle partitions — that is AsyncP's job.
    fn pick_blind(&mut self) -> Option<Task> {
        let n = self.parts.len();
        for i in 0..n {
            let x = (self.rr + i) % n;
            if self.parts[x].in_flight {
                continue;
            }
            if !self.parts[x].round_gathered {
                self.parts[x].round_gathered = true;
                if let Some(t) = self.build_gather(x) {
                    // stay on x so its Compute follows immediately — the
                    // G,C pairing of paper Fig. 3 is what lets a message
                    // produced earlier in this round be consumed (gathered
                    // *and* applied) later in the same round
                    self.rr = x;
                    return Some(t);
                }
            }
            if !self.parts[x].round_computed && self.compute_allowed(x) {
                self.parts[x].round_computed = true;
                self.rr = (x + 1) % n;
                return Some(self.build_compute(x));
            }
        }
        None
    }

    /// True once every partition has used (or been denied) both of its
    /// slots in the current blind round.
    fn round_complete(&self) -> bool {
        self.parts
            .iter()
            .enumerate()
            .all(|(x, p)| p.round_gathered && (p.round_computed || !self.compute_allowed(x)))
    }

    fn reset_round_flags(&mut self) {
        for p in &mut self.parts {
            p.round_gathered = false;
            p.round_computed = false;
        }
    }

    /// Priority scheduler (`AsyncP`, paper §V-E): schedules only partitions
    /// that can contribute — pending deltas or unread messages — ordered by
    /// the user's priority function, with strict G→C pairing per partition.
    fn pick_prio(&mut self) -> Option<Task> {
        let n = self.parts.len();
        let desc = self
            .config
            .priority
            .as_ref()
            .map(|p| p.descending)
            .unwrap_or(true);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (self.parts[a].priority, self.parts[b].priority);
            if desc {
                pb.total_cmp(&pa)
            } else {
                pa.total_cmp(&pb)
            }
        });
        // pass 1: productive partitions — gather-then-compute pairs, best
        // priority first (gathering right before the compute batches every
        // unread table into one statement)
        for &x in &order {
            if self.parts[x].in_flight {
                continue;
            }
            let can_compute = self.parts[x].pending && self.compute_allowed(x);
            if !can_compute {
                continue;
            }
            if self.parts[x].prefer_compute {
                return Some(self.build_compute(x));
            }
            if let Some(t) = self.build_gather(x) {
                return Some(t);
            }
            return Some(self.build_compute(x));
        }
        // pass 2: bulk gathers — partitions with enough unread tables to be
        // worth a statement of their own
        const GATHER_BATCH: usize = 4;
        for &x in &order {
            if self.parts[x].in_flight {
                continue;
            }
            if self.unread_count(x) >= GATHER_BATCH {
                if let Some(t) = self.build_gather(x) {
                    return Some(t);
                }
            }
        }
        // pass 3: nothing productive anywhere — drain stragglers so the
        // registry empties and termination can be detected
        if self.in_flight == 0 {
            for &x in &order {
                if let Some(t) = self.build_gather(x) {
                    return Some(t);
                }
            }
        }
        None
    }

    /// Live unread message tables targeted at partition `x`.
    fn unread_count(&self, x: usize) -> usize {
        let len = self.msgs.len();
        self.msgs[self.parts[x].cursor..len]
            .iter()
            .filter(|m| m.live && m.targets.as_ref().map(|t| t.contains(&x)).unwrap_or(true))
            .count()
    }

    fn run_async(&mut self) -> SqloopResult<(u64, u64)> {
        match self.config.mode {
            ExecutionMode::AsyncPrio => self.run_async_prio(),
            _ => self.run_async_blind(),
        }
    }

    fn run_async_blind(&mut self) -> SqloopResult<(u64, u64)> {
        let mut rounds = self.start_round;
        let mut round_changed = 0u64;
        let mut first_error: Option<SqloopError> = None;
        loop {
            while first_error.is_none()
                && !self.cancel.cancelled()
                && self.in_flight < self.config.threads
            {
                if let Some(t) = self.pick_blind() {
                    self.dispatch(t)?;
                    continue;
                }
                if !self.round_complete() {
                    break; // remaining slots belong to busy partitions
                }
                // round boundary: decisions need the round's full effect,
                // so wait for in-flight tasks (a soft join, much weaker
                // than Sync's two barriers per round — within the round
                // gathers freely consumed same-round messages)
                if self.in_flight > 0 {
                    break;
                }
                rounds += 1;
                if self.trace.is_enabled() {
                    self.trace.event(
                        EventKind::Round,
                        None,
                        Some(rounds),
                        format!("{round_changed} row(s) changed"),
                    );
                }
                self.cache_probe
                    .tick(self.trace, rounds, self.config.mode.label());
                self.round = rounds + 1;
                let done = match self.tc {
                    // capped partitions can hold pending deltas forever, so
                    // Iterations completes once caps are hit and messages
                    // are drained
                    Termination::Iterations(n) => {
                        let all_capped = self.parts.iter().all(|p| p.computes >= *n);
                        all_capped && !self.any_unread_messages()
                    }
                    Termination::Updates(n) => round_changed <= *n,
                    Termination::Data { .. } | Termination::Delta { .. } => {
                        self.tc_check(rounds, round_changed)?
                    }
                };
                if done {
                    self.drain()?;
                    return Ok((self.report_rounds(rounds), round_changed));
                }
                // the round boundary (nothing in flight) is Async's
                // quiesce point for cancellation and checkpoints
                if self.check_cancel(rounds, round_changed)? {
                    return Ok((self.report_rounds(rounds), round_changed));
                }
                let carried = self.maybe_checkpoint(rounds, round_changed)?;
                self.watchdog_check(rounds, round_changed)?;
                if rounds >= self.config.max_iterations {
                    self.drain()?;
                    return Err(SqloopError::Semantic(format!(
                        "termination condition not satisfied within {rounds} rounds"
                    )));
                }
                round_changed = carried;
                self.reset_round_flags();
            }
            if self.in_flight == 0 {
                if let Some(e) = first_error {
                    return Err(self.fail(e, rounds, round_changed));
                }
                if self.cancel.cancelled() {
                    // mid-round cancellation: dispatching stopped above and
                    // the pipeline is dry — quiesce, checkpoint, return the
                    // partial state
                    self.check_cancel(rounds, round_changed)?;
                    return Ok((self.report_rounds(rounds), round_changed));
                }
                if !self.round_complete() {
                    continue; // new round was just opened; dispatch again
                }
                // quiescent with an Iterations cap: everything drained
                rounds += 1;
                return Ok((self.report_rounds(rounds), round_changed));
            }
            let d = match self.recv_done() {
                Ok(d) => d,
                Err(e) => return Err(self.fail(first_error.unwrap_or(e), rounds, round_changed)),
            };
            match self.handle_done(d) {
                Ok(c) => round_changed += c,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    }

    fn run_async_prio(&mut self) -> SqloopResult<(u64, u64)> {
        self.init_priorities();
        let tasks_per_round = (2 * self.parts.len()).max(1);
        let mut rounds = self.start_round;
        let mut wave_changed = 0u64;
        let mut wave_tasks = 0usize;
        let mut first_error: Option<SqloopError> = None;
        loop {
            if first_error.is_none() && !self.cancel.cancelled() {
                while self.in_flight < self.config.threads {
                    match self.pick_prio() {
                        Some(t) => self.dispatch(t)?,
                        None => break,
                    }
                }
            }
            if self.in_flight == 0 {
                if let Some(e) = first_error {
                    return Err(self.fail(e, rounds, wave_changed));
                }
                if self.cancel.cancelled() {
                    // mid-wave cancellation: dispatching stopped above and
                    // the pipeline is dry — quiesce, checkpoint, return the
                    // partial state
                    self.check_cancel(rounds, wave_changed)?;
                    return Ok((self.report_rounds(rounds), wave_changed));
                }
                // quiescent: nothing can contribute any more
                rounds += 1;
                return Ok((self.report_rounds(rounds), wave_changed));
            }
            let d = match self.recv_done() {
                Ok(d) => d,
                Err(e) => return Err(self.fail(first_error.unwrap_or(e), rounds, wave_changed)),
            };
            match self.handle_done(d) {
                Ok(c) => wave_changed += c,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                    continue;
                }
            }
            wave_tasks += 1;
            if wave_tasks >= tasks_per_round {
                rounds += 1;
                wave_tasks = 0;
                if self.trace.is_enabled() {
                    self.trace.event(
                        EventKind::Round,
                        None,
                        Some(rounds),
                        format!("{wave_changed} row(s) changed"),
                    );
                }
                self.cache_probe
                    .tick(self.trace, rounds, self.config.mode.label());
                self.round = rounds + 1;
                // virtual-iteration boundary: evaluate data/delta conditions
                match self.tc {
                    Termination::Data { .. } | Termination::Delta { .. } => {
                        if self.tc_check(rounds, wave_changed)? {
                            self.drain()?;
                            return Ok((self.report_rounds(rounds), wave_changed));
                        }
                    }
                    Termination::Updates(n) => {
                        if wave_changed <= *n && !self.any_work_left() {
                            self.drain()?;
                            return Ok((self.report_rounds(rounds), wave_changed));
                        }
                    }
                    Termination::Iterations(_) => {}
                }
                // the wave boundary is AsyncP's quiesce point for
                // cancellation and checkpoints
                if self.check_cancel(rounds, wave_changed)? {
                    return Ok((self.report_rounds(rounds), wave_changed));
                }
                let carried = self.maybe_checkpoint(rounds, wave_changed)?;
                self.watchdog_check(rounds, wave_changed)?;
                if rounds >= self.config.max_iterations {
                    self.drain()?;
                    return Err(SqloopError::Semantic(format!(
                        "termination condition not satisfied within {rounds} rounds"
                    )));
                }
                wave_changed = carried;
            }
        }
    }

    /// True when any live message table is unread by one of its targets.
    fn any_unread_messages(&self) -> bool {
        let len = self.msgs.len();
        self.parts.iter().enumerate().any(|(x, p)| {
            self.msgs[p.cursor..len]
                .iter()
                .any(|m| m.live && m.targets.as_ref().map(|t| t.contains(&x)).unwrap_or(true))
        })
    }

    fn any_work_left(&self) -> bool {
        let len = self.msgs.len();
        self.parts.iter().enumerate().any(|(x, p)| {
            p.in_flight
                || p.pending
                || self.msgs[p.cursor..len]
                    .iter()
                    .any(|m| m.live && m.targets.as_ref().map(|t| t.contains(&x)).unwrap_or(true))
        })
    }

    /// Reported iteration count: per-partition compute rounds when the
    /// condition is `ITERATIONS n`, otherwise scheduler waves.
    fn report_rounds(&self, waves: u64) -> u64 {
        match self.tc {
            Termination::Iterations(_) => self.parts.iter().map(|p| p.computes).max().unwrap_or(0),
            _ => waves,
        }
    }

    /// Waits for all in-flight tasks after a termination decision; returns
    /// the rows they changed.
    fn drain(&mut self) -> SqloopResult<u64> {
        let mut changed = 0u64;
        while self.in_flight > 0 {
            let d = self.recv_done()?;
            changed += self.handle_done(d)?;
        }
        Ok(changed)
    }

    // -- checkpoint / cancellation (DESIGN.md §11) --------------------------

    /// Brings the loop to a quiesce point: waits out in-flight tasks, then
    /// force-gathers every unread message table until the registry is empty
    /// — after which the partition tables alone are the loop state. Returns
    /// the rows changed by the forced gathers (they belong to the next
    /// round's tally, not the completed one).
    fn quiesce(&mut self) -> SqloopResult<u64> {
        let mut changed = self.drain()?;
        loop {
            let mut dispatched = false;
            for x in 0..self.parts.len() {
                if let Some(t) = self.build_gather(x) {
                    self.dispatch(t)?;
                    dispatched = true;
                }
            }
            if !dispatched {
                break;
            }
            changed += self.drain()?;
        }
        self.gc_messages();
        Ok(changed)
    }

    /// Dumps the quiesced loop state. Callers must hold the quiesce
    /// invariant (no in-flight task, no live message table).
    fn parallel_snapshot(&mut self, rounds: u64, last_change: u64) -> SqloopResult<LoopSnapshot> {
        let names = self.gen.names().clone();
        let mut tables = Vec::with_capacity(self.parts.len() + 1);
        for x in 0..self.parts.len() {
            tables.push(dump_table_sql(
                self.main,
                &names.partition(x),
                &self.part_cols,
                Some(0),
            )?);
        }
        if self.needs_delta {
            let visible: Vec<(String, DataType)> = self
                .part_cols
                .iter()
                .filter(|(n, _)| !n.starts_with("__"))
                .cloned()
                .collect();
            tables.push(dump_table_sql(
                self.main,
                &names.delta_snapshot(),
                &visible,
                None,
            )?);
        }
        Ok(LoopSnapshot {
            fingerprint: self.fingerprint,
            mode: self.config.mode.label().into(),
            round: rounds,
            last_change,
            parts: self
                .parts
                .iter()
                .map(|p| PartSnap {
                    computes: p.computes,
                    msg_seq: p.msg_seq,
                    pending: p.pending,
                    prefer_compute: p.prefer_compute,
                })
                .collect(),
            seeds: (0..self.config.threads as u64).map(|i| i + 1).collect(),
            tables,
        })
    }

    /// Writes a checkpoint when one is due at `rounds` completed rounds;
    /// returns the rows changed while quiescing (carry them into the next
    /// round's tally).
    fn maybe_checkpoint(&mut self, rounds: u64, last_change: u64) -> SqloopResult<u64> {
        let due = self
            .checkpointer
            .as_ref()
            .map(|c| c.due(rounds))
            .unwrap_or(false);
        if !due {
            return Ok(0);
        }
        let carried = self.quiesce()?;
        let snap = self.parallel_snapshot(rounds, last_change)?;
        if let Some(ck) = self.checkpointer.as_mut() {
            let path = ck.save(&snap)?;
            trace_checkpoint(self.trace, rounds, &path);
        }
        Ok(carried)
    }

    // -- resource governance (DESIGN.md §12) --------------------------------

    /// Feeds the watchdog one completed round: round budget, delta trend,
    /// and — when numeric checks are on — a NaN/±∞ probe of every
    /// partition table so a verdict names the diverging partition. A
    /// verdict aborts governed (quiesce + final checkpoint) and surfaces
    /// as the typed error.
    ///
    /// # Errors
    /// The watchdog verdict, probe-query engine errors, or
    /// checkpoint-write errors from the governed abort.
    fn watchdog_check(&mut self, rounds: u64, changed: u64) -> SqloopResult<()> {
        let Some(mut w) = self.governance.watchdog.take() else {
            return Ok(());
        };
        let mut result = w.check_round(rounds, changed);
        if result.is_ok() && w.numeric_checks() {
            let schema = self.gen.schema().clone();
            let names = self.gen.names().clone();
            for x in 0..self.parts.len() {
                result = w.probe_table(
                    self.main,
                    &names.partition(x),
                    &schema.columns,
                    &schema.types,
                    Some(x),
                    rounds,
                );
                if result.is_err() {
                    break;
                }
            }
        }
        self.governance.watchdog = Some(w);
        if let Err(verdict) = result {
            self.governed_abort(rounds, changed, &verdict)?;
            return Err(verdict);
        }
        Ok(())
    }

    /// Routes a scheduler-fatal error: a task failure rooted in the
    /// engine's memory budget aborts governed and becomes the typed
    /// [`SqloopError::BudgetExceeded`]; anything else passes through.
    fn fail(&mut self, e: SqloopError, rounds: u64, last_change: u64) -> SqloopError {
        if let Some(m) = root_budget_exceeded(&e) {
            let verdict = SqloopError::BudgetExceeded {
                what: format!("memory ({m})"),
                round: rounds,
            };
            if self.governed_abort(rounds, last_change, &verdict).is_ok() {
                return verdict;
            }
        }
        e
    }

    /// Lifts the engine memory limit (budget-exhausted state could not even
    /// quiesce otherwise), quiesces, and writes a final checkpoint so the
    /// governed abort is resumable under a larger budget.
    fn governed_abort(
        &mut self,
        rounds: u64,
        last_change: u64,
        verdict: &SqloopError,
    ) -> SqloopResult<()> {
        self.governance.lift_memory_limit();
        self.trace.event(
            EventKind::Watchdog,
            None,
            Some(rounds),
            format!("governed abort: {verdict}"),
        );
        obs::global().counter("sqloop.governed_aborts").inc();
        self.quiesce()?;
        if self.checkpointer.is_some() {
            let snap = self.parallel_snapshot(rounds, last_change)?;
            if let Some(ck) = self.checkpointer.as_mut() {
                let path = ck.save(&snap)?;
                trace_checkpoint(self.trace, rounds, &path);
            }
        }
        Ok(())
    }

    /// When the token is cancelled: quiesces, writes a final checkpoint
    /// (when checkpointing is on), marks the run cancelled, and returns
    /// `true` — the scheduler then returns its partial state as a normal
    /// result.
    fn check_cancel(&mut self, rounds: u64, last_change: u64) -> SqloopResult<bool> {
        if !self.cancel.cancelled() {
            return Ok(false);
        }
        self.trace.event(
            EventKind::Cancel,
            None,
            Some(rounds),
            "cancelled at quiesce point",
        );
        obs::global().counter("sqloop.cancelled_runs").inc();
        self.quiesce()?;
        if self.checkpointer.is_some() {
            let snap = self.parallel_snapshot(rounds, last_change)?;
            if let Some(ck) = self.checkpointer.as_mut() {
                let path = ck.save(&snap)?;
                trace_checkpoint(self.trace, rounds, &path);
            }
        }
        self.cancelled = true;
        Ok(true)
    }
}

/// Walks a (possibly [`SqloopError::Task`]-wrapped) error chain looking for
/// the engine's memory-budget refusal; returns its message when found so the
/// scheduler can convert the failure into a governed abort.
fn root_budget_exceeded(e: &SqloopError) -> Option<String> {
    match e {
        SqloopError::Db(DbError::BudgetExceeded(m)) => Some(m.clone()),
        SqloopError::Task { source, .. } => root_budget_exceeded(source),
        _ => None,
    }
}
