//! TCP client driver: connect to a remote engine by URL.

use crate::driver::{Connection, Driver};
use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, MAGIC,
};
use sqldb::{DbError, DbResult, EngineProfile, IsolationLevel, StmtOutput};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Driver that opens wire-protocol connections to a remote server.
#[derive(Debug, Clone)]
pub struct TcpDriver {
    addr: String,
    profile: EngineProfile,
}

impl TcpDriver {
    /// Connects once to discover the remote engine profile, then acts as a
    /// factory for further connections.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] when the server is unreachable.
    pub fn connect(addr: &str) -> DbResult<TcpDriver> {
        let mut probe = TcpConnection::open(addr)?;
        let profile = probe.fetch_profile()?;
        Ok(TcpDriver {
            addr: addr.to_owned(),
            profile,
        })
    }

    /// The remote address.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl Driver for TcpDriver {
    fn connect(&self) -> DbResult<Box<dyn Connection>> {
        Ok(Box::new(TcpConnection::open(&self.addr)?))
    }

    fn profile(&self) -> EngineProfile {
        self.profile
    }
}

/// One wire-protocol connection.
#[derive(Debug)]
pub struct TcpConnection {
    stream: TcpStream,
    profile: EngineProfile,
}

impl TcpConnection {
    /// Opens and handshakes a connection.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] on network or handshake failure.
    pub fn open(addr: &str) -> DbResult<TcpConnection> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| DbError::Connection(format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| DbError::Connection(format!("nodelay: {e}")))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .map_err(|e| DbError::Connection(format!("timeout: {e}")))?;
        let mut conn = TcpConnection {
            stream,
            profile: EngineProfile::Postgres,
        };
        conn.stream
            .write_all(&MAGIC)
            .map_err(|e| DbError::Connection(format!("handshake: {e}")))?;
        let mut echo = [0u8; 2];
        conn.stream
            .read_exact(&mut echo)
            .map_err(|e| DbError::Connection(format!("handshake: {e}")))?;
        if echo != MAGIC {
            return Err(DbError::Connection("bad handshake echo".into()));
        }
        let profile = conn.fetch_profile()?;
        conn.profile = profile;
        Ok(conn)
    }

    fn round_trip(&mut self, req: &Request) -> DbResult<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let frame = read_frame(&mut self.stream)?;
        decode_response(frame)
    }

    fn fetch_profile(&mut self) -> DbResult<EngineProfile> {
        match self.round_trip(&Request::Profile)? {
            Response::ProfileIs(p) => Ok(p),
            other => Err(DbError::Connection(format!(
                "unexpected profile response {other:?}"
            ))),
        }
    }
}

impl Connection for TcpConnection {
    fn execute(&mut self, sql: &str) -> DbResult<StmtOutput> {
        self.round_trip(&Request::Execute(sql.to_owned()))?
            .into_output()
    }

    fn execute_batch(&mut self, statements: &[String]) -> DbResult<Vec<StmtOutput>> {
        match self.round_trip(&Request::Batch(statements.to_vec()))? {
            Response::BatchResults(items) => {
                items.into_iter().map(Response::into_output).collect()
            }
            Response::Error(e) => Err(e),
            other => Err(DbError::Connection(format!(
                "unexpected batch response {other:?}"
            ))),
        }
    }

    fn begin(&mut self) -> DbResult<()> {
        self.round_trip(&Request::Begin)?.into_output().map(|_| ())
    }

    fn commit(&mut self) -> DbResult<()> {
        self.round_trip(&Request::Commit)?.into_output().map(|_| ())
    }

    fn rollback(&mut self) -> DbResult<()> {
        self.round_trip(&Request::Rollback)?
            .into_output()
            .map(|_| ())
    }

    fn set_isolation(&mut self, level: IsolationLevel) -> DbResult<()> {
        self.round_trip(&Request::SetIsolation(level))?
            .into_output()
            .map(|_| ())
    }

    fn profile(&self) -> EngineProfile {
        self.profile
    }
}

impl Drop for TcpConnection {
    fn drop(&mut self) {
        // best-effort goodbye so the server can clean up promptly
        let _ = write_frame(&mut self.stream, &encode_request(&Request::Close));
    }
}
