//! TCP server exposing a database over the wire protocol.
//!
//! One OS thread per client connection, each owning one engine session —
//! matching the paper's observation that "for each new connection … the
//! database system spawns a new process to accommodate the additional
//! computational needs" (§I).
//!
//! The server governs its own resources ([`ServerConfig`]): connections
//! past `max_connections` are admitted just long enough to receive a typed
//! [`DbError::Overloaded`] and closed; statements past `shed_high_water`
//! in-flight are shed with the same retryable error so clients back off
//! through their `RetryPolicy` instead of piling on; and a server-side
//! statement timeout bounds every statement of every session.

use crate::driver::MAX_PREPARED_PER_CONNECTION;
use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, PipelineStep, Request, Response,
    MAGIC,
};
use sqldb::{Database, DbError, DbResult, Session, StmtHandle, StmtOutput};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle client handler polls its socket (and the drain flag)
/// while waiting for the next frame. Bounds how long an idle connection can
/// delay a drain.
const DRAIN_POLL: Duration = Duration::from_millis(25);

/// Process-wide connection sequence, so every handler thread gets a unique
/// `dbcp-conn-{id}` name a stack dump can be correlated against.
static CONN_SEQ: AtomicU64 = AtomicU64::new(1);

/// Admission-control and load-shed settings for a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Maximum concurrent client connections (`0` = unlimited). A
    /// connection past the limit completes the handshake, receives
    /// [`DbError::Overloaded`] for its first request, and is closed —
    /// fast, typed rejection instead of a hang or a silent reset.
    pub max_connections: usize,
    /// Shed new statements while this many are in flight (`0` = off).
    /// Shed statements fail with the retryable [`DbError::Overloaded`]
    /// without touching the engine.
    pub shed_high_water: usize,
    /// Per-statement execution deadline applied to every session
    /// (`None` = off). Clients may override their own via
    /// [`Request::SetStatementTimeout`].
    pub statement_timeout: Option<Duration>,
    /// How long [`Server::shutdown`] waits for in-flight statements to
    /// finish and their responses to be written before abandoning the
    /// handler threads (default 5 s). Idle connections close within
    /// one 25 ms poll tick of the drain starting; only handlers mid-statement
    /// use the budget.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 0,
            shed_high_water: 0,
            statement_timeout: None,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Shared admission/shed state, updated by every client thread.
#[derive(Debug)]
struct Governor {
    cfg: ServerConfig,
    conns: AtomicUsize,
    in_flight: AtomicUsize,
    rejected: Arc<obs::Counter>,
    shed: Arc<obs::Counter>,
    open_gauge: Arc<obs::Gauge>,
    in_flight_gauge: Arc<obs::Gauge>,
}

impl Governor {
    fn new(cfg: ServerConfig) -> Governor {
        let reg = obs::global();
        Governor {
            cfg,
            conns: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            rejected: reg.counter("dbcp.server.admission_rejected"),
            shed: reg.counter("dbcp.server.statements_shed"),
            open_gauge: reg.gauge("dbcp.server.open_connections"),
            in_flight_gauge: reg.gauge("dbcp.server.in_flight_statements"),
        }
    }

    /// Claims a connection slot; `None` when the server is full.
    fn try_admit(self: &Arc<Self>) -> Option<ConnGuard> {
        let now = self.conns.fetch_add(1, Ordering::SeqCst) + 1;
        if self.cfg.max_connections != 0 && now > self.cfg.max_connections {
            self.conns.fetch_sub(1, Ordering::SeqCst);
            self.rejected.inc();
            return None;
        }
        self.open_gauge.add(1);
        Some(ConnGuard { gov: self.clone() })
    }

    /// Claims an in-flight statement slot.
    ///
    /// # Errors
    /// Returns [`DbError::Overloaded`] when the high-water mark is crossed.
    fn start_statement(self: &Arc<Self>) -> DbResult<StmtGuard> {
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        if self.cfg.shed_high_water != 0 && now > self.cfg.shed_high_water {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            self.shed.inc();
            return Err(DbError::Overloaded(format!(
                "shedding load: {} statements in flight (high water {})",
                now - 1,
                self.cfg.shed_high_water
            )));
        }
        self.in_flight_gauge.add(1);
        Ok(StmtGuard { gov: self.clone() })
    }
}

/// Releases a connection slot on drop — including when the client thread
/// panics, so a crashed handler can never leak the admission counter.
#[derive(Debug)]
struct ConnGuard {
    gov: Arc<Governor>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.gov.conns.fetch_sub(1, Ordering::SeqCst);
        self.gov.open_gauge.add(-1);
    }
}

/// Releases an in-flight statement slot on drop.
#[derive(Debug)]
struct StmtGuard {
    gov: Arc<Governor>,
}

impl Drop for StmtGuard {
    fn drop(&mut self) {
        self.gov.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.gov.in_flight_gauge.add(-1);
    }
}

/// A running database server.
///
/// Dropping the handle (or calling [`Server::shutdown`]) drains: the
/// listener stops accepting, in-flight statements finish and flush their
/// responses under [`ServerConfig::drain_timeout`], idle connections close
/// within one poll tick, and the handler threads are joined.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Set first during shutdown: handlers finish the statement they are
    /// executing, write its response, then close instead of waiting for
    /// another frame.
    draining: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Every spawned client-handler thread, so shutdown can join them under
    /// the drain deadline. The accept loop prunes finished entries as it
    /// admits new connections, bounding growth to the live-handler count.
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    governor: Arc<Governor>,
}

impl Server {
    /// Binds `db` to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections with no admission limits.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] when binding fails.
    pub fn bind(db: Database, addr: &str) -> DbResult<Server> {
        Server::bind_with(db, addr, ServerConfig::default())
    }

    /// As [`Server::bind`], with explicit admission-control settings.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] when binding fails.
    pub fn bind_with(db: Database, addr: &str, cfg: ServerConfig) -> DbResult<Server> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DbError::Connection(format!("bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DbError::Connection(format!("local_addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let draining = Arc::new(AtomicBool::new(false));
        let drain_flag = draining.clone();
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = handlers.clone();
        let governor = Arc::new(Governor::new(cfg));
        let gov = governor.clone();
        let accept_thread = std::thread::Builder::new()
            .name("dbcp-accept".into())
            .spawn(move || accept_loop(listener, db, flag, drain_flag, registry, gov))
            .map_err(|e| DbError::Connection(format!("spawn: {e}")))?;
        Ok(Server {
            addr,
            shutdown,
            draining,
            accept_thread: Some(accept_thread),
            handlers,
            governor,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently admitted client connections.
    pub fn open_connections(&self) -> usize {
        self.governor.conns.load(Ordering::SeqCst)
    }

    /// Gracefully shuts the server down: stops accepting, lets in-flight
    /// statements finish and their responses reach the wire under
    /// [`ServerConfig::drain_timeout`], then closes. Handlers still running
    /// at the deadline are abandoned (counted in
    /// `dbcp.server.drain_abandoned`) rather than blocking shutdown forever.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // phase 1: stop accepting. The drain flag goes up first so a
        // handler that checks it after the listener poke already sees it.
        self.draining.store(true, Ordering::SeqCst);
        self.shutdown.store(true, Ordering::SeqCst);
        // poke the listener so accept() returns
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // phase 2: drain. Idle handlers notice the flag within DRAIN_POLL
        // and exit; handlers mid-statement get the full budget to finish
        // and flush their response.
        let deadline = Instant::now() + self.governor.cfg.drain_timeout;
        loop {
            let mut live = {
                let mut reg = self.handlers.lock().unwrap_or_else(|p| p.into_inner());
                std::mem::take(&mut *reg)
            };
            let still_running: Vec<JoinHandle<()>> = live
                .drain(..)
                .filter_map(|h| {
                    if h.is_finished() {
                        let _ = h.join();
                        None
                    } else {
                        Some(h)
                    }
                })
                .collect();
            if still_running.is_empty() {
                break;
            }
            if Instant::now() >= deadline {
                // abandon the stragglers: they hold only a session that
                // rolls back on drop, and counting them makes the abandon
                // visible to operators
                obs::global()
                    .counter("dbcp.server.drain_abandoned")
                    .add(still_running.len() as u64);
                break;
            }
            {
                let mut reg = self.handlers.lock().unwrap_or_else(|p| p.into_inner());
                reg.extend(still_running);
            }
            std::thread::sleep(DRAIN_POLL);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    db: Database,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    gov: Arc<Governor>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match gov.try_admit() {
                    Some(guard) => {
                        let db = db.clone();
                        let gov = gov.clone();
                        let drain = draining.clone();
                        let conn_id = CONN_SEQ.fetch_add(1, Ordering::Relaxed);
                        let spawned = std::thread::Builder::new()
                            .name(format!("dbcp-conn-{conn_id}"))
                            .spawn(move || {
                                // the guard rides inside the thread so a
                                // panicking handler still releases its slot
                                let _guard = guard;
                                let _ = serve_client(stream, db, gov, drain);
                            });
                        // spawn failure drops the guard: slot released;
                        // successes are registered so shutdown can join them
                        if let Ok(handle) = spawned {
                            let mut reg = handlers.lock().unwrap_or_else(|p| p.into_inner());
                            reg.retain(|h| !h.is_finished());
                            reg.push(handle);
                        }
                    }
                    None => {
                        // reject off the accept thread so a slow client
                        // cannot stall admission of others
                        let _ = std::thread::Builder::new()
                            .name("dbcp-reject".into())
                            .spawn(move || {
                                let _ = serve_rejected(stream);
                            });
                    }
                }
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Completes the handshake, answers the first request with a typed
/// [`DbError::Overloaded`], and closes — clients see a fast rejection on
/// their profile probe instead of a reset or a hang.
fn serve_rejected(mut stream: TcpStream) -> DbResult<()> {
    let budget = Some(Duration::from_secs(5));
    let _ = stream.set_read_timeout(budget);
    let _ = stream.set_write_timeout(budget);
    let mut magic = [0u8; 2];
    stream
        .read_exact(&mut magic)
        .map_err(|e| DbError::Connection(format!("handshake read: {e}")))?;
    if magic != MAGIC {
        return Err(DbError::Connection("bad protocol magic".into()));
    }
    stream
        .write_all(&MAGIC)
        .map_err(|e| DbError::Connection(format!("handshake write: {e}")))?;
    let _ = read_frame(&mut stream)?;
    let resp = Response::Error(DbError::Overloaded(
        "connection limit reached, retry later".into(),
    ));
    write_frame(&mut stream, &encode_response(&resp))
}

/// Waits for the next frame without consuming bytes until one has started
/// to arrive, so a drain can close an idle connection at any poll tick
/// without corrupting the stream framing mid-read.
///
/// Returns `None` when the connection should close: peer gone, a socket
/// error, or the server started draining while the connection was idle.
fn await_frame(stream: &mut TcpStream, draining: &AtomicBool) -> Option<bytes::Bytes> {
    let mut probe = [0u8; 1];
    loop {
        if stream.set_read_timeout(Some(DRAIN_POLL)).is_err() {
            return None;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return None, // orderly close
            Ok(_) => {
                // a frame is arriving: read it whole with no poll timeout
                // (read_exact + a timeout could drop bytes mid-frame)
                if stream.set_read_timeout(None).is_err() {
                    return None;
                }
                return read_frame(stream).ok();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if draining.load(Ordering::SeqCst) {
                    return None; // idle during a drain: close now
                }
            }
            Err(_) => return None,
        }
    }
}

fn serve_client(
    mut stream: TcpStream,
    db: Database,
    gov: Arc<Governor>,
    draining: Arc<AtomicBool>,
) -> DbResult<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| DbError::Connection(format!("nodelay: {e}")))?;
    // handshake
    let mut magic = [0u8; 2];
    stream
        .read_exact(&mut magic)
        .map_err(|e| DbError::Connection(format!("handshake read: {e}")))?;
    if magic != MAGIC {
        return Err(DbError::Connection("bad protocol magic".into()));
    }
    stream
        .write_all(&MAGIC)
        .map_err(|e| DbError::Connection(format!("handshake write: {e}")))?;

    let mut session = db.connect();
    session.set_statement_timeout(gov.cfg.statement_timeout);
    // per-connection prepared statements; dropped (with the whole map) when
    // the client disconnects, so leaked handles can't outlive the session
    let mut prepared: HashMap<u64, StmtHandle> = HashMap::new();
    let mut next_stmt_id: u64 = 1;
    loop {
        let frame = match await_frame(&mut stream, &draining) {
            Some(f) => f,
            // peer went away or the server is draining and this connection
            // is idle; session drop rolls back any open transaction
            None => return Ok(()),
        };
        let request = decode_request(frame)?;
        if matches!(request, Request::Close) {
            return Ok(());
        }
        // per-frame panic boundary: one panicking statement costs its
        // issuer one errored response, never the connection (or, by
        // unwinding into the runtime, the server). Recovery rolls the
        // session back so locks a mid-statement panic left held in the
        // shared lock table are released before the next frame.
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eval_request(
                request,
                &db,
                &mut session,
                &gov,
                &mut prepared,
                &mut next_stmt_id,
            )
        }))
        .unwrap_or_else(|payload| {
            session.recover_after_panic();
            obs::global().counter("dbcp.server.panics_caught").inc();
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Response::Error(DbError::TxnAborted(format!(
                "statement panicked (transaction rolled back): {detail}"
            )))
        });
        write_frame(&mut stream, &encode_response(&response))?;
    }
}

/// Evaluates one decoded request against the connection's session.
/// `Request::Close` is handled by the caller (it ends the connection).
fn eval_request(
    request: Request,
    db: &Database,
    session: &mut Session,
    gov: &Arc<Governor>,
    prepared: &mut HashMap<u64, StmtHandle>,
    next_stmt_id: &mut u64,
) -> Response {
    match request {
        Request::Close => Response::Done,
        Request::Execute(sql) => match gov.start_statement() {
            Err(e) => Response::Error(e),
            Ok(_stmt) => Response::from_result(session.execute(&sql)),
        },
        Request::Batch(stmts) => match gov.start_statement() {
            Err(e) => Response::Error(e),
            Ok(_stmt) => {
                let mut items = Vec::with_capacity(stmts.len());
                let mut failed = None;
                for s in &stmts {
                    match session.execute(s) {
                        Ok(out) => items.push(Response::from_result(Ok(out))),
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                match failed {
                    Some(e) => Response::Error(e),
                    None => Response::BatchResults(items),
                }
            }
        },
        Request::Begin => Response::from_result(session.begin().map(|()| StmtOutput::Done)),
        Request::Commit => Response::from_result(session.commit().map(|()| StmtOutput::Done)),
        Request::Rollback => Response::from_result(session.rollback().map(|()| StmtOutput::Done)),
        Request::SetIsolation(level) => {
            session.set_isolation(level);
            Response::Done
        }
        Request::SetStatementTimeout(ms) => {
            let timeout = match ms {
                0 => None,
                n => Some(Duration::from_millis(n)),
            };
            session.set_statement_timeout(timeout);
            Response::Done
        }
        Request::Profile => Response::ProfileIs(db.profile()),
        Request::Prepare(sql) => {
            if prepared.len() >= MAX_PREPARED_PER_CONNECTION {
                Response::Error(DbError::BudgetExceeded(format!(
                        "connection holds {MAX_PREPARED_PER_CONNECTION} prepared statements; close some first"
                    )))
            } else {
                match session.prepare(&sql) {
                    Ok(handle) => {
                        let stmt_id = *next_stmt_id;
                        *next_stmt_id += 1;
                        let param_count = handle.param_count() as u32;
                        prepared.insert(stmt_id, handle);
                        Response::Prepared {
                            stmt_id,
                            param_count,
                        }
                    }
                    Err(e) => Response::Error(e),
                }
            }
        }
        Request::ExecutePrepared { stmt_id, params } => match gov.start_statement() {
            Err(e) => Response::Error(e),
            Ok(_stmt) => match prepared.get(&stmt_id) {
                Some(handle) => {
                    let handle = handle.clone();
                    Response::from_result(session.execute_prepared(&handle, &params))
                }
                None => Response::Error(DbError::NotFound(format!("prepared statement {stmt_id}"))),
            },
        },
        Request::ClosePrepared(stmt_id) => {
            // idempotent: unknown ids are fine (client may retry)
            prepared.remove(&stmt_id);
            Response::Done
        }
        Request::Pipeline(steps) => match gov.start_statement() {
            Err(e) => Response::Error(e),
            Ok(_stmt) => {
                let mut outputs = Vec::with_capacity(steps.len());
                let mut error = None;
                for step in &steps {
                    let result = match step {
                        PipelineStep::Execute(sql) => session.execute(sql),
                        PipelineStep::Prepared { stmt_id, params } => match prepared.get(stmt_id) {
                            Some(handle) => {
                                let handle = handle.clone();
                                session.execute_prepared(&handle, params)
                            }
                            None => Err(DbError::NotFound(format!("prepared statement {stmt_id}"))),
                        },
                    };
                    match result {
                        Ok(out) => outputs.push(Response::from_result(Ok(out))),
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                Response::PipelineResults { outputs, error }
            }
        },
        // metrics never touch tables, so they bypass load shedding:
        // an operator must be able to scrape an overloaded server
        Request::Metrics(cmd) => {
            Response::from_result(Ok(crate::metrics_cmd::eval_metrics_cmd(db, &cmd)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panicking_client_thread_releases_its_connection_slot() {
        let gov = Arc::new(Governor::new(ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        }));
        let guard = gov.try_admit().expect("first admission");
        assert!(gov.try_admit().is_none(), "server is full");
        let handle = std::thread::Builder::new()
            .name("dbcp-conn-test".into())
            .spawn(move || {
                // the guard rides inside the thread, exactly as in
                // accept_loop; the panic must not leak the slot
                let _guard = guard;
                panic!("handler crashed");
            })
            .unwrap();
        assert!(handle.join().is_err(), "thread must have panicked");
        assert_eq!(gov.conns.load(Ordering::SeqCst), 0);
        assert!(gov.try_admit().is_some(), "slot was released");
    }

    #[test]
    fn shed_statements_release_their_slot_and_count() {
        let gov = Arc::new(Governor::new(ServerConfig {
            shed_high_water: 1,
            ..ServerConfig::default()
        }));
        let held = gov.start_statement().expect("first statement");
        let err = gov.start_statement();
        assert!(
            matches!(err, Err(DbError::Overloaded(_))),
            "expected shed, got {err:?}"
        );
        // the failed claim must not leak the in-flight counter
        assert_eq!(gov.in_flight.load(Ordering::SeqCst), 1);
        drop(held);
        assert_eq!(gov.in_flight.load(Ordering::SeqCst), 0);
        assert!(gov.start_statement().is_ok());
    }
}
