//! The public middleware facade: accept SQLoop SQL, decide an execution
//! strategy, run it, report what happened (paper Fig. 2).

use crate::analysis::{analyze, AnalysisOutcome};
use crate::checkpoint::{load_latest_recovering, Checkpointer};
use crate::config::{ExecutionMode, SqloopConfig};
use crate::error::{SqloopError, SqloopResult};
use crate::grammar::{parse, IterativeCte, SqloopQuery};
use crate::parallel::run_iterative_parallel_observed;
use crate::progress::{ProgressSample, RecoveryCounters};
use crate::single::{run_iterative_single_governed, run_recursive};
use crate::translate::translate_sql;
use crate::watchdog::{Governance, Watchdog};
use dbcp::{driver_for_url, Driver};
use obs::{EventKind, RegistrySnapshot, TraceData, TraceHandle, TraceSummary};
use sqldb::{QueryResult, StmtOutput};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a statement ended up being executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Strategy {
    /// Regular SQL, translated and passed through to the engine.
    Passthrough,
    /// Recursive CTE, semi-naive single-threaded evaluation.
    RecursiveSingle,
    /// Iterative CTE on the single-threaded executor.
    IterativeSingle {
        /// Why parallelization was not used (`None` = requested by config).
        fallback_reason: Option<String>,
    },
    /// Iterative CTE on the parallel engine.
    IterativeParallel {
        /// The scheduling policy used.
        mode: ExecutionMode,
    },
}

impl Strategy {
    /// Stable mode label used to tag digest attribution: the scheduler-mode
    /// label for iterative runs, `passthrough`/`recursive` otherwise.
    pub fn mode_label(&self) -> &'static str {
        match self {
            Strategy::Passthrough => "passthrough",
            Strategy::RecursiveSingle => "recursive",
            Strategy::IterativeSingle { .. } => "Single",
            Strategy::IterativeParallel { mode } => mode.label(),
        }
    }
}

/// Number of miss-heavy digest families kept in
/// [`DigestReport::top_misses`].
pub const DIGEST_MISS_TOP_K: usize = 8;

/// Per-run statement-digest attribution, tagged with the execution mode
/// that produced it. Built by diffing the engine's digest table around the
/// run, so the numbers cover this statement only even though the engine
/// accumulates across runs.
#[derive(Debug, Clone, Default)]
pub struct DigestReport {
    /// Mode label the run used: `Single`, `Sync`, `Async`, `AsyncP`,
    /// `passthrough`, or `recursive`.
    pub mode: String,
    /// Per-run digest deltas, sorted by total time descending (digest
    /// ascending as tie-break). `max_us` is the engine's lifetime maximum
    /// for the family, not a per-run figure.
    pub families: Vec<sqldb::DigestEntry>,
    /// The same deltas re-ranked by plan-cache misses, top
    /// [`DIGEST_MISS_TOP_K`] only — the statement families whose texts
    /// never repeat, i.e. where the plan cache is losing.
    pub top_misses: Vec<sqldb::DigestEntry>,
}

impl DigestReport {
    /// Builds the report by diffing two digest-table snapshots.
    pub fn from_snapshots(
        mode: &str,
        before: Vec<sqldb::DigestEntry>,
        after: Vec<sqldb::DigestEntry>,
    ) -> DigestReport {
        let prior: std::collections::HashMap<String, sqldb::DigestEntry> =
            before.into_iter().map(|e| (e.digest.clone(), e)).collect();
        let mut families: Vec<sqldb::DigestEntry> = after
            .into_iter()
            .filter_map(|mut e| {
                if let Some(p) = prior.get(&e.digest) {
                    e.calls = e.calls.saturating_sub(p.calls);
                    e.errors = e.errors.saturating_sub(p.errors);
                    e.total_us = e.total_us.saturating_sub(p.total_us);
                    e.rows = e.rows.saturating_sub(p.rows);
                    e.plan_hits = e.plan_hits.saturating_sub(p.plan_hits);
                    e.plan_misses = e.plan_misses.saturating_sub(p.plan_misses);
                    // max_us keeps the lifetime maximum: a delta of maxima
                    // is not meaningful
                }
                (e.calls > 0).then_some(e)
            })
            .collect();
        families.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.digest.cmp(&b.digest)));
        let mut top_misses: Vec<sqldb::DigestEntry> = families
            .iter()
            .filter(|e| e.plan_misses > 0)
            .cloned()
            .collect();
        top_misses.sort_by(|a, b| {
            b.plan_misses
                .cmp(&a.plan_misses)
                .then(a.digest.cmp(&b.digest))
        });
        top_misses.truncate(DIGEST_MISS_TOP_K);
        DigestReport {
            mode: mode.to_owned(),
            families,
            top_misses,
        }
    }

    /// Aggregate plan-cache outcome over this run's families:
    /// `(hits, misses)`.
    pub fn plan_cache_totals(&self) -> (u64, u64) {
        self.families
            .iter()
            .fold((0, 0), |(h, m), e| (h + e.plan_hits, m + e.plan_misses))
    }
}

/// Everything a run reports (result + provenance + metrics).
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The rows of the final query (or the passthrough statement).
    pub result: QueryResult,
    /// How it ran.
    pub strategy: Strategy,
    /// Iterations/recursions performed (0 for passthrough).
    pub iterations: u64,
    /// Rows changed by the last iteration.
    pub last_change: u64,
    /// Compute tasks executed (parallel runs).
    pub computes: u64,
    /// Gather tasks executed (parallel runs).
    pub gathers: u64,
    /// Non-empty message tables created (parallel runs).
    pub messages: u64,
    /// Aggregate worker task time (parallel runs); `worker_busy / elapsed`
    /// measures achieved overlap.
    pub worker_busy: Duration,
    /// Convergence samples (when sampling was configured).
    pub samples: Vec<ProgressSample>,
    /// Fault-recovery counters (all zero unless faults were injected or
    /// encountered; `downgraded` marks a parallel run that finished on the
    /// single-threaded executor).
    pub recovery: RecoveryCounters,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Trace summary of this run (when [`SqloopConfig::trace`] is enabled).
    pub trace: Option<TraceSummary>,
    /// Full trace data behind [`ExecutionReport::trace`] — spans and events
    /// for timeline rendering or JSON export.
    pub trace_data: Option<TraceData>,
    /// Delta of the process-wide metrics registry over this run (pool,
    /// retry, chaos, wire and engine-statement metrics). Empty when nothing
    /// instrumented fired.
    pub metrics: RegistrySnapshot,
    /// Per-run delta of the engine's execution statistics, when the driver
    /// can see the engine directly (`local://` drivers; `None` over TCP).
    pub engine_stats: Option<sqldb::StatsSnapshot>,
    /// Per-run statement-digest attribution tagged with the execution
    /// mode, when the driver can see the engine's digest table (`local://`
    /// drivers with digest collection enabled; `None` over TCP).
    pub digests: Option<DigestReport>,
    /// True when the run stopped early on cancellation (deadline, Ctrl-C or
    /// a programmatic [`dbcp::CancelToken`]); `result` then holds the
    /// partial state at the cancellation point.
    pub cancelled: bool,
    /// Path of the last checkpoint written during this run, when
    /// [`SqloopConfig::checkpoint`] was configured and at least one
    /// snapshot was taken.
    pub checkpoint: Option<PathBuf>,
    /// Human-readable note when resuming had to fall back past corrupt or
    /// unreadable snapshots (quarantined files, older generations used).
    /// `None` on a clean load or when the run did not resume.
    pub recovery_note: Option<String>,
}

/// The SQLoop middleware instance.
///
/// Owns a connection factory to one target engine plus a configuration;
/// cheap to clone.
///
/// # Examples
/// ```
/// use sqloop::SQLoop;
///
/// # fn main() -> Result<(), sqloop::SqloopError> {
/// let loop_ = SQLoop::connect("local://postgres")?;
/// loop_.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")?;
/// loop_.execute("INSERT INTO edges VALUES (1, 2, 1.0), (2, 1, 1.0)")?;
/// let out = loop_.execute(
///     "WITH ITERATIVE r(node, hops, delta) AS (
///        SELECT src, 0.0, 1.0 FROM edges GROUP BY src
///        ITERATE
///        SELECT r.node, r.hops + r.delta, COALESCE(SUM(s.delta * e.weight), 0.0)
///        FROM r LEFT JOIN edges AS e ON r.node = e.dst
///        LEFT JOIN r AS s ON s.node = e.src
///        GROUP BY r.node UNTIL 2 ITERATIONS)
///      SELECT COUNT(*) FROM r",
/// )?;
/// assert_eq!(out.rows.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SQLoop {
    driver: Arc<dyn Driver>,
    config: SqloopConfig,
}

impl std::fmt::Debug for SQLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SQLoop")
            .field("engine", &self.driver.profile())
            .field("config", &self.config)
            .finish()
    }
}

impl SQLoop {
    /// Wraps an existing driver with the default configuration.
    pub fn new(driver: Arc<dyn Driver>) -> SQLoop {
        SQLoop {
            driver,
            config: SqloopConfig::default(),
        }
    }

    /// Connects by URL (`tcp://host:port`, `local://postgres|mysql|mariadb`)
    /// — the paper's "the user connects by specifying only the URL and the
    /// port number" (§IV-A).
    ///
    /// # Errors
    /// Connection errors from the driver layer.
    pub fn connect(url: &str) -> SqloopResult<SQLoop> {
        Ok(SQLoop::new(driver_for_url(url)?))
    }

    /// Replaces the configuration (builder style).
    pub fn with_config(mut self, config: SqloopConfig) -> SQLoop {
        self.config = config;
        self
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut SqloopConfig {
        &mut self.config
    }

    /// The current configuration.
    pub fn config(&self) -> &SqloopConfig {
        &self.config
    }

    /// The underlying driver.
    pub fn driver(&self) -> &Arc<dyn Driver> {
        &self.driver
    }

    /// Executes one SQLoop statement and returns its rows.
    ///
    /// # Errors
    /// Grammar, analysis, translation and engine errors.
    pub fn execute(&self, sql: &str) -> SqloopResult<QueryResult> {
        self.execute_detailed(sql).map(|r| r.result)
    }

    /// Executes one statement with full provenance and metrics: strategy,
    /// iteration/task counts, per-run registry and engine-statistics deltas,
    /// and — when [`SqloopConfig::trace`] is on — the run's trace (also
    /// written as JSON when a trace path is configured).
    ///
    /// # Errors
    /// See [`SQLoop::execute`].
    pub fn execute_detailed(&self, sql: &str) -> SqloopResult<ExecutionReport> {
        let started = Instant::now();
        let metrics_before = obs::global().snapshot();
        let engine_before = self.driver.engine_stats();
        let digests_before = self.driver.digest_stats();
        let mut report = self.execute_inner(sql, started)?;
        report.metrics = obs::global().snapshot().delta_since(&metrics_before);
        report.engine_stats = match (self.driver.engine_stats(), engine_before) {
            (Some(now), Some(before)) => Some(now.delta_since(&before)),
            _ => None,
        };
        if let (Some(before), Some(after)) = (digests_before, self.driver.digest_stats()) {
            report.digests = Some(DigestReport::from_snapshots(
                report.strategy.mode_label(),
                before,
                after,
            ));
        }
        if let (Some(path), Some(data)) = (&self.config.trace.json_path, &report.trace_data) {
            if let Err(e) = obs::write_trace_json(path, data, Some(&report.metrics)) {
                eprintln!("sqloop: could not write trace to {}: {e}", path.display());
            }
        }
        Ok(report)
    }

    fn execute_inner(&self, sql: &str, started: Instant) -> SqloopResult<ExecutionReport> {
        match parse(sql)? {
            SqloopQuery::Plain(text) => {
                let mut conn = self.driver.connect()?;
                let translated = translate_sql(&text, conn.profile())?;
                let out = conn.execute(&translated)?;
                let result = match out {
                    StmtOutput::Rows(r) => r,
                    StmtOutput::Affected(n) => QueryResult {
                        columns: vec!["rows_affected".into()],
                        rows: vec![vec![sqldb::Value::Int(n as i64)]],
                    },
                    StmtOutput::Done => QueryResult::default(),
                };
                Ok(ExecutionReport {
                    result,
                    strategy: Strategy::Passthrough,
                    iterations: 0,
                    last_change: 0,
                    computes: 0,
                    gathers: 0,
                    messages: 0,
                    worker_busy: Duration::ZERO,
                    samples: Vec::new(),
                    recovery: RecoveryCounters::default(),
                    elapsed: started.elapsed(),
                    trace: None,
                    trace_data: None,
                    metrics: RegistrySnapshot::default(),
                    engine_stats: None,
                    digests: None,
                    cancelled: false,
                    checkpoint: None,
                    recovery_note: None,
                })
            }
            SqloopQuery::Recursive(cte) => {
                let mut conn = self.driver.connect()?;
                let out = run_recursive(
                    conn.as_mut(),
                    &cte,
                    self.config.max_iterations,
                    self.config.keep_artifacts,
                )?;
                Ok(ExecutionReport {
                    result: out.result,
                    strategy: Strategy::RecursiveSingle,
                    iterations: out.iterations,
                    last_change: out.last_change,
                    computes: 0,
                    gathers: 0,
                    messages: 0,
                    worker_busy: Duration::ZERO,
                    samples: Vec::new(),
                    recovery: RecoveryCounters::default(),
                    elapsed: started.elapsed(),
                    trace: None,
                    trace_data: None,
                    metrics: RegistrySnapshot::default(),
                    engine_stats: None,
                    digests: None,
                    cancelled: false,
                    checkpoint: None,
                    recovery_note: None,
                })
            }
            SqloopQuery::Iterative(cte) => self.execute_iterative(&cte, started),
        }
    }

    fn execute_iterative(
        &self,
        cte: &IterativeCte,
        started: Instant,
    ) -> SqloopResult<ExecutionReport> {
        let trace = TraceHandle::new(self.config.trace.enabled);
        // a fresh statement starts with a clean token; a deadline (when
        // configured) covers this statement only
        self.config.cancel.reset();
        if let Some(d) = self.config.deadline {
            self.config.cancel.set_deadline_in(d);
        }
        let lift_mem = || {
            self.driver.set_memory_limit(None);
        };
        let run_single = |reason: Option<String>| -> SqloopResult<ExecutionReport> {
            if self.config.max_mem.is_some() {
                self.driver.set_memory_limit(self.config.max_mem);
            }
            let mut conn = self.driver.connect()?;
            if self.config.statement_timeout.is_some() {
                conn.set_statement_timeout(self.config.statement_timeout)?;
            }
            // a resume snapshot only applies here when Single is the
            // configured mode: after a downgrade the snapshot describes the
            // parallel layout and the fingerprint check would reject it
            let mut recovery_note: Option<String> = None;
            let resume = match &self.config.resume_from {
                Some(path) if self.config.mode == ExecutionMode::Single => {
                    let recovered = load_latest_recovering(path)?;
                    recovery_note = recovered.note;
                    Some(recovered.snapshot)
                }
                _ => None,
            };
            let mut checkpointer = match &self.config.checkpoint {
                Some(ck) => Some(Checkpointer::new(ck.clone())?),
                None => None,
            };
            let mut governance = Governance {
                watchdog: self
                    .config
                    .watchdog
                    .is_active()
                    .then(|| Watchdog::new(self.config.watchdog, &cte.termination)),
                lift_mem: Some(&lift_mem),
            };
            let out = run_iterative_single_governed(
                conn.as_mut(),
                cte,
                self.config.max_iterations,
                self.config.keep_artifacts,
                &trace,
                &self.config.cancel,
                checkpointer.as_mut(),
                resume.as_ref(),
                &mut governance,
            )?;
            let checkpoint = checkpointer
                .as_ref()
                .and_then(|c| c.last_path().map(std::path::Path::to_path_buf));
            Ok(ExecutionReport {
                result: out.result,
                strategy: Strategy::IterativeSingle {
                    fallback_reason: reason,
                },
                iterations: out.iterations,
                last_change: out.last_change,
                computes: 0,
                gathers: 0,
                messages: 0,
                worker_busy: Duration::ZERO,
                samples: Vec::new(),
                recovery: RecoveryCounters::default(),
                elapsed: started.elapsed(),
                trace: None,
                trace_data: None,
                metrics: RegistrySnapshot::default(),
                engine_stats: None,
                digests: None,
                cancelled: out.cancelled,
                checkpoint,
                recovery_note,
            })
        };

        let mut report = if self.config.mode == ExecutionMode::Single {
            run_single(None)?
        } else {
            let columns = self.resolve_columns(cte)?;
            match analyze(cte, &columns)? {
                AnalysisOutcome::NotParallelizable { reason } => run_single(Some(reason))?,
                AnalysisOutcome::Parallelizable(plan) => {
                    let (result, recovery) = run_iterative_parallel_observed(
                        &self.driver,
                        cte,
                        plan,
                        &self.config,
                        &trace,
                    );
                    match result {
                        Ok(run) => ExecutionReport {
                            result: run.outcome.result,
                            strategy: Strategy::IterativeParallel {
                                mode: self.config.mode,
                            },
                            iterations: run.outcome.iterations,
                            last_change: run.outcome.last_change,
                            computes: run.computes,
                            gathers: run.gathers,
                            messages: run.messages,
                            worker_busy: run.worker_busy,
                            samples: run.samples,
                            recovery: run.recovery,
                            elapsed: started.elapsed(),
                            trace: None,
                            trace_data: None,
                            metrics: RegistrySnapshot::default(),
                            engine_stats: None,
                            digests: None,
                            cancelled: run.outcome.cancelled,
                            checkpoint: run.checkpoint,
                            recovery_note: run.recovery_note,
                        },
                        // budget exhausted on a transient fault: the engine
                        // is flaky, not the query — degrade to the
                        // single-threaded executor rather than surfacing
                        // the error
                        Err(e) if self.config.downgrade_on_failure && e.is_retryable() => {
                            eprintln!(
                                "sqloop: parallel execution failed ({e}); \
                                 downgrading to the single-threaded executor"
                            );
                            trace.event(
                                EventKind::Downgrade,
                                None,
                                None,
                                format!("parallel execution failed: {e}"),
                            );
                            let reason = Some(format!("downgraded after fault: {e}"));
                            // the rerun talks to the same flaky engine; retry
                            // it whole (every scratch CREATE is preceded by a
                            // DROP IF EXISTS, so a rerun is idempotent)
                            // rather than letting one more transient fault
                            // kill the query
                            let mut attempt: u32 = 0;
                            let mut report = loop {
                                match run_single(reason.clone()) {
                                    Ok(r) => break r,
                                    Err(e)
                                        if e.is_retryable()
                                            && attempt < self.config.task_retries =>
                                    {
                                        attempt += 1;
                                        // interruptible: Ctrl-C during a
                                        // downgrade backoff should not hang
                                        if !self.config.cancel.sleep(
                                            self.config.retry_backoff * (1 << attempt.min(10)),
                                        ) {
                                            return Err(e);
                                        }
                                    }
                                    Err(e) => return Err(e),
                                }
                            };
                            report.recovery = RecoveryCounters {
                                downgraded: true,
                                ..recovery
                            };
                            report
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        };
        if let Some(data) = trace.data() {
            report.trace = Some(TraceSummary::from_data(&data));
            report.trace_data = Some(data);
        }
        report.elapsed = started.elapsed();
        Ok(report)
    }

    /// Column names for analysis: the declared list, or a probe of the seed.
    fn resolve_columns(&self, cte: &IterativeCte) -> SqloopResult<Vec<String>> {
        if !cte.columns.is_empty() {
            return Ok(cte.columns.clone());
        }
        let mut probe = cte.seed.clone();
        probe.limit = Some(0);
        let mut conn = self.driver.connect()?;
        let sql = crate::translate::translate_query_to_sql(&probe, conn.profile());
        let result = conn.query(&sql).map_err(SqloopError::from)?;
        Ok(result.columns)
    }
}
