//! One query, three engines: the same iterative CTE text runs unmodified on
//! the PostgreSQL, MySQL and MariaDB profiles — SQLoop's translation module
//! rewrites the generated statements per dialect (paper §IV-B), which you
//! can see in the printed samples.
//!
//! Run with: `cargo run --release --example multi_engine`

use dbcp::{Driver, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::translate::translate_sql;
use sqloop::{ExecutionMode, SQLoop, SqloopConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = graphgen::web_graph(400, 4, 5);
    let query = workloads::queries::pagerank(15);

    // show what the translation module does with a gather-style statement
    let sample = "UPDATE r SET delta = LEAST(delta, inc.val) \
                  FROM (SELECT id, MIN(val) AS val FROM m GROUP BY id) AS inc \
                  WHERE r.node = inc.id AND inc.val < Infinity";
    println!("canonical statement:\n  {sample}\n");
    for profile in EngineProfile::ALL {
        println!("{profile} gets:\n  {}\n", translate_sql(sample, profile)?);
    }

    for profile in EngineProfile::ALL {
        let db = Database::new(profile);
        let driver = LocalDriver::new(db.clone());
        let mut conn = driver.connect()?;
        workloads::load_edges(conn.as_mut(), &graph)?;
        drop(conn);

        let sqloop = SQLoop::new(Arc::new(driver)).with_config(SqloopConfig {
            mode: ExecutionMode::Async,
            threads: 4,
            partitions: 16,
            ..SqloopConfig::default()
        });
        let report = sqloop.execute_detailed(&query)?;
        let total: f64 = report
            .result
            .rows
            .iter()
            .map(|r| r[1].as_f64().unwrap_or(0.0))
            .sum();
        let stats = db.stats();
        println!(
            "{:<11} {:>8.2?}  sum(rank)={:.2}  stmts={:<6} index-probes={:<8} nl-pairs={}",
            profile.name(),
            report.elapsed,
            total,
            stats.statements,
            stats.index_lookups,
            stats.rows_joined,
        );
    }
    println!(
        "\n(the engines differ architecturally: PostgreSQL hash-joins, the\n\
              MySQL family nested-loops — visible in the probe/pair counters)"
    );
    Ok(())
}
