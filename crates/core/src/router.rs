//! Multi-engine routing (paper §I: "it is possible to create connections
//! with multiple RDBMSs on different machines by specifying the URL of each
//! target database engine and use SQLoop to redirect the queries on
//! demand").
//!
//! A [`SqloopRouter`] holds one configured [`SQLoop`] per named target; the
//! same iterative/recursive CTE text runs on whichever engine the caller
//! names — the translation module adapts it per dialect automatically.

use crate::api::{ExecutionReport, SQLoop};
use crate::config::SqloopConfig;
use crate::error::{SqloopError, SqloopResult};
use sqldb::QueryResult;
use std::collections::BTreeMap;

/// A registry of named SQLoop targets.
#[derive(Debug, Default)]
pub struct SqloopRouter {
    targets: BTreeMap<String, SQLoop>,
}

impl SqloopRouter {
    /// Creates an empty router.
    pub fn new() -> SqloopRouter {
        SqloopRouter::default()
    }

    /// Registers `name` → a middleware instance connected to `url`
    /// (`local://…` or `tcp://host:port`).
    ///
    /// # Errors
    /// Connection errors, or [`SqloopError::Config`] for duplicate names.
    pub fn add_url(&mut self, name: &str, url: &str) -> SqloopResult<()> {
        self.add(name, SQLoop::connect(url)?)
    }

    /// Registers a pre-built middleware instance under `name`.
    ///
    /// # Errors
    /// Returns [`SqloopError::Config`] for duplicate names.
    pub fn add(&mut self, name: &str, sqloop: SQLoop) -> SqloopResult<()> {
        if self.targets.contains_key(name) {
            return Err(SqloopError::Config(format!(
                "target '{name}' is already registered"
            )));
        }
        self.targets.insert(name.to_owned(), sqloop);
        Ok(())
    }

    /// Registered target names (sorted).
    pub fn targets(&self) -> Vec<&str> {
        self.targets.keys().map(String::as_str).collect()
    }

    /// The middleware instance for `name`.
    ///
    /// # Errors
    /// Returns [`SqloopError::Config`] for unknown targets.
    pub fn target(&self, name: &str) -> SqloopResult<&SQLoop> {
        self.targets
            .get(name)
            .ok_or_else(|| SqloopError::Config(format!("unknown target '{name}'")))
    }

    /// Mutable access (e.g. to adjust one target's [`SqloopConfig`]).
    ///
    /// # Errors
    /// Returns [`SqloopError::Config`] for unknown targets.
    pub fn target_mut(&mut self, name: &str) -> SqloopResult<&mut SQLoop> {
        self.targets
            .get_mut(name)
            .ok_or_else(|| SqloopError::Config(format!("unknown target '{name}'")))
    }

    /// Executes one statement on the named target.
    ///
    /// # Errors
    /// Unknown target, or any middleware/engine error.
    pub fn execute_on(&self, name: &str, sql: &str) -> SqloopResult<QueryResult> {
        self.target(name)?.execute(sql)
    }

    /// Executes one statement on *every* target, returning
    /// `(name, report)` pairs in name order — useful for cross-engine
    /// comparisons like the paper's evaluation.
    ///
    /// # Errors
    /// Fails on the first target that errors (earlier targets keep their
    /// effects).
    pub fn execute_everywhere(&self, sql: &str) -> SqloopResult<Vec<(String, ExecutionReport)>> {
        let mut out = Vec::with_capacity(self.targets.len());
        for (name, sqloop) in &self.targets {
            out.push((name.clone(), sqloop.execute_detailed(sql)?));
        }
        Ok(out)
    }

    /// Applies one configuration to every registered target.
    pub fn configure_all(&mut self, config: &SqloopConfig) {
        for sqloop in self.targets.values_mut() {
            *sqloop.config_mut() = config.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutionMode;

    fn router() -> SqloopRouter {
        let mut r = SqloopRouter::new();
        r.add_url("pg", "local://postgres").unwrap();
        r.add_url("my", "local://mysql").unwrap();
        r
    }

    #[test]
    fn routes_to_named_targets() {
        let r = router();
        r.execute_on("pg", "CREATE TABLE t (a INT)").unwrap();
        r.execute_on("pg", "INSERT INTO t VALUES (1)").unwrap();
        // the other engine has its own catalog
        assert!(r.execute_on("my", "SELECT * FROM t").is_err());
        let out = r.execute_on("pg", "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(out.rows[0][0], sqldb::Value::Int(1));
    }

    #[test]
    fn duplicate_and_unknown_targets_rejected() {
        let mut r = router();
        assert!(matches!(
            r.add_url("pg", "local://mariadb"),
            Err(SqloopError::Config(_))
        ));
        assert!(matches!(
            r.execute_on("nope", "SELECT 1"),
            Err(SqloopError::Config(_))
        ));
        assert_eq!(r.targets(), vec!["my", "pg"]);
    }

    #[test]
    fn execute_everywhere_runs_the_same_cte_on_all_engines() {
        let mut r = router();
        r.add_url("maria", "local://mariadb").unwrap();
        let config = crate::SqloopConfig {
            mode: ExecutionMode::Single,
            ..crate::SqloopConfig::default()
        };
        r.configure_all(&config);
        for name in ["pg", "my", "maria"] {
            r.execute_on(name, "CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
                .unwrap();
            r.execute_on(name, "INSERT INTO edges VALUES (1,2,1.0),(2,3,1.0)")
                .unwrap();
        }
        let fib = "WITH RECURSIVE f(n, pn) AS (VALUES (0,1) UNION ALL \
                   SELECT n + pn, n FROM f WHERE n < 100) SELECT SUM(n) FROM f";
        let results = r.execute_everywhere(fib).unwrap();
        assert_eq!(results.len(), 3);
        let first = &results[0].1.result.rows;
        for (name, report) in &results {
            assert_eq!(&report.result.rows, first, "{name}");
        }
    }
}
