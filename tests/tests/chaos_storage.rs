//! Composed fault domains in one seeded run: the network misbehaves
//! (existing [`ChaosDriver`] faults — refused connects, statement errors,
//! latency, dropped connections) *and* the disk misbehaves ([`TornFs`]
//! corrupting the newest checkpoint generation). Recovery must compose too:
//! task retry/replay absorbs the network faults, corruption fallback
//! absorbs the storage fault, and the resumed run still lands on the
//! Dijkstra oracle in all three parallel modes.

use dbcp::{with_chaos, ChaosConfig, Driver, FaultWeights, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::checkpoint::load_latest;
use sqloop::{
    CheckpointConfig, Checkpointer, ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, SqloopError,
    StorageFault, TornFs,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqloop-chsto-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fresh_driver(graph: &graphgen::Graph) -> Arc<dyn Driver> {
    let db = Database::new(EngineProfile::Postgres);
    let driver: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    driver
}

fn durable(mode: ExecutionMode, dir: &Path) -> SqloopConfig {
    let mut config = SqloopConfig {
        mode,
        threads: 3,
        partitions: 8,
        retry_backoff: Duration::ZERO,
        downgrade_on_failure: false,
        task_retries: 6,
        checkpoint: Some(CheckpointConfig::new(dir).every(1)),
        ..SqloopConfig::default()
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}"));
    }
    config
}

fn storm(seed: u64, fault_rate: f64) -> ChaosConfig {
    ChaosConfig {
        weights: FaultWeights {
            connect_refused: 1,
            stmt_error: 4,
            latency: 2,
            drop: 1,
            ..FaultWeights::default()
        },
        latency: Duration::from_millis(1),
        skip_connections: 1,
        ..ChaosConfig::seeded(seed, fault_rate)
    }
}

#[test]
fn network_and_storage_faults_compose_and_still_reach_the_oracle() {
    let graph = graphgen::chain(24);
    let oracle = workloads::oracle::sssp(&graph, 0);
    for (i, mode) in [
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ]
    .into_iter()
    .enumerate()
    {
        let dir = scratch(&format!("compose-{mode}"));

        // phase 1: crash mid-run under a seeded network storm, leaving
        // durable generations behind
        let (driver, stats) = with_chaos(fresh_driver(&graph), storm(700 + i as u64, 0.06));
        let mut config = durable(mode, &dir);
        config.max_iterations = if mode == ExecutionMode::AsyncPrio {
            2
        } else {
            6
        };
        let err = SQLoop::new(driver)
            .with_config(config)
            .execute(&workloads::queries::sssp_all(0))
            .unwrap_err();
        assert!(
            matches!(err, SqloopError::Semantic(_)),
            "{mode}: expected the iteration-cap crash, got {err}"
        );

        // phase 2: the disk turns on us — one more checkpoint lands with a
        // flipped bit, injected through TornFs, making the *newest*
        // generation corrupt while older ones stay valid
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.ends_with(".sqloop"))
            .collect();
        names.sort();
        let mut poisoned = load_latest(&dir.join(names.last().unwrap())).unwrap();
        poisoned.round += 1;
        let io = Arc::new(TornFs::new(
            &dir,
            Some(StorageFault::BitFlip {
                op: 1,
                bit: 7 * (i as u64 + 1) + 300,
            }),
        ));
        let ckpt_cfg = CheckpointConfig::new(&dir);
        let bad_path = Checkpointer::with_io(ckpt_cfg, io)
            .unwrap()
            .save(&poisoned)
            .unwrap();
        let bad_name = bad_path.file_name().unwrap().to_string_lossy().into_owned();

        // phase 3: resume under a *different* seeded storm; fallback must
        // quarantine the corrupt generation and converge from the prior one
        let reg = obs::global();
        let fallback_before = reg.counter("sqloop.ckpt.fallback_loads").get();
        let corrupt_before = reg.counter("sqloop.ckpt.corrupt_detected").get();
        let (driver, resume_stats) = with_chaos(fresh_driver(&graph), storm(800 + i as u64, 0.06));
        let mut config = durable(mode, &dir);
        config.resume_from = Some(dir.clone());
        let report = SQLoop::new(driver)
            .with_config(config)
            .execute_detailed(&workloads::queries::sssp_all(0))
            .unwrap();

        assert_eq!(report.result.rows.len(), graph.node_count());
        for row in &report.result.rows {
            let node = row[0].as_i64().unwrap() as u64;
            let d = row[1].as_f64().unwrap();
            match oracle.get(&node) {
                Some(&expected) => assert!(
                    (d - expected).abs() < 1e-9,
                    "{mode} (chaos {stats:?} / {resume_stats:?}): node {node} \
                     distance {d} vs {expected}"
                ),
                None => assert!(d.is_infinite(), "{mode}: node {node} unreachable, got {d}"),
            }
        }
        assert!(
            reg.counter("sqloop.ckpt.corrupt_detected").get() > corrupt_before,
            "{mode}: the bit flip must be detected"
        );
        assert!(
            reg.counter("sqloop.ckpt.fallback_loads").get() > fallback_before,
            "{mode}: converging from the prior generation is a fallback load"
        );
        assert!(
            dir.join(format!("{bad_name}.corrupt")).is_file(),
            "{mode}: the corrupt newest generation must be quarantined"
        );
        assert!(
            report.recovery_note.is_some(),
            "{mode}: the report must tell the recovery story"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
