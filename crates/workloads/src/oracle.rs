//! Native in-memory reference implementations — correctness oracles the SQL
//! results are diffed against in tests.

use graphgen::{Graph, NodeId};
use std::collections::{BinaryHeap, HashMap};

/// Delta-accumulative PageRank (the exact iteration the paper's Example 2
/// encodes, after \[11\]/Maiter): `rank += delta`,
/// `delta' = 0.85 * Σ_in delta_src * weight`, seeded with `delta = 0.15`.
///
/// Returns `node → rank` after `iterations` synchronous rounds.
pub fn pagerank(graph: &Graph, iterations: u64) -> HashMap<NodeId, f64> {
    let weighted = graph.weighted_edges();
    let mut rank: HashMap<NodeId, f64> = HashMap::new();
    let mut delta: HashMap<NodeId, f64> = HashMap::new();
    for &n in graph.nodes() {
        rank.insert(n, 0.0);
        delta.insert(n, 0.15);
    }
    for _ in 0..iterations {
        let mut incoming: HashMap<NodeId, f64> = HashMap::new();
        for &(s, d, w) in &weighted {
            *incoming.entry(d).or_insert(0.0) += delta[&s] * w;
        }
        for &n in graph.nodes() {
            *rank.get_mut(&n).expect("seeded") += delta[&n];
            delta.insert(n, 0.85 * incoming.get(&n).copied().unwrap_or(0.0));
        }
    }
    rank
}

/// Dijkstra over the paper's `1/outdegree` weights. Unreachable nodes are
/// absent; the source maps to `0.0`.
pub fn sssp(graph: &Graph, source: NodeId) -> HashMap<NodeId, f64> {
    let weighted = graph.weighted_edges();
    let mut adj: HashMap<NodeId, Vec<(NodeId, f64)>> = HashMap::new();
    for (s, d, w) in weighted {
        adj.entry(s).or_default().push((d, w));
    }
    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    // min-heap via reversed ordering
    let mut heap: BinaryHeap<(std::cmp::Reverse<Ordered>, NodeId)> = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push((std::cmp::Reverse(ordered(0.0)), source));
    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        let d = d.0;
        if d > dist.get(&u).copied().unwrap_or(f64::INFINITY) {
            continue;
        }
        if let Some(next) = adj.get(&u) {
            for &(v, w) in next {
                let nd = d + w;
                if nd < dist.get(&v).copied().unwrap_or(f64::INFINITY) {
                    dist.insert(v, nd);
                    heap.push((std::cmp::Reverse(ordered(nd)), v));
                }
            }
        }
    }
    dist
}

/// Totally ordered f64 wrapper for the Dijkstra heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ordered(f64);

#[allow(non_snake_case)]
fn ordered(v: f64) -> Ordered {
    Ordered(v)
}

impl Eq for Ordered {}

impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Unnormalized HITS step, iterated `rounds` times from all-ones:
/// `auth' = Σ_in hub`, `hub' = Σ_out auth` (both from the previous round).
pub fn hits_like(graph: &Graph, rounds: u64) -> HashMap<NodeId, (f64, f64)> {
    let mut auth: HashMap<NodeId, f64> = graph.nodes().iter().map(|&n| (n, 1.0)).collect();
    let mut hub: HashMap<NodeId, f64> = auth.clone();
    for _ in 0..rounds {
        let mut new_auth: HashMap<NodeId, f64> = graph.nodes().iter().map(|&n| (n, 0.0)).collect();
        let mut new_hub: HashMap<NodeId, f64> = graph.nodes().iter().map(|&n| (n, 0.0)).collect();
        for &(s, d) in graph.edges() {
            *new_auth.get_mut(&d).expect("node seeded") += hub[&s];
            *new_hub.get_mut(&s).expect("node seeded") += auth[&d];
        }
        auth = new_auth;
        hub = new_hub;
    }
    graph
        .nodes()
        .iter()
        .map(|&n| (n, (auth[&n], hub[&n])))
        .collect()
}

/// BFS hop counts (the descendant query's semantics): `node → clicks`.
pub fn descendants(graph: &Graph, source: NodeId, max_hops: u64) -> HashMap<NodeId, u64> {
    graph
        .bfs_hops(source)
        .into_iter()
        .filter(|&(_, h)| h <= max_hops)
        .collect()
}

/// Weakly-connected components by min-label propagation: `node → component`
/// where the component id is the smallest node id in it.
pub fn connected_components(graph: &Graph) -> HashMap<NodeId, NodeId> {
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &(s, d) in graph.edges() {
        adj.entry(s).or_default().push(d);
        adj.entry(d).or_default().push(s);
    }
    let mut label: HashMap<NodeId, NodeId> = graph.nodes().iter().map(|&n| (n, n)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &n in graph.nodes() {
            let mut best = label[&n];
            if let Some(nb) = adj.get(&n) {
                for &m in nb {
                    best = best.min(label[&m]);
                }
            }
            if best < label[&n] {
                label.insert(n, best);
                changed = true;
            }
        }
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::{chain, web_graph, Graph};

    fn diamond() -> Graph {
        Graph::from_edges(vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn pagerank_total_rank_grows_towards_n() {
        let g = web_graph(100, 3, 1);
        let r10 = pagerank(&g, 10);
        let r50 = pagerank(&g, 50);
        let t10: f64 = r10.values().sum();
        let t50: f64 = r50.values().sum();
        assert!(t50 > t10);
        // closed graph: total converges to n (all nodes have out-edges here)
        assert!(t50 <= g.node_count() as f64 + 1e-6);
    }

    #[test]
    fn pagerank_is_deterministic() {
        let g = web_graph(50, 3, 2);
        assert_eq!(pagerank(&g, 5), pagerank(&g, 5));
    }

    #[test]
    fn sssp_diamond() {
        let g = diamond();
        let d = sssp(&g, 0);
        assert_eq!(d[&0], 0.0);
        assert_eq!(d[&1], 0.5);
        assert_eq!(d[&2], 0.5);
        assert_eq!(d[&3], 1.5); // 0.5 + 1.0 through either middle node
    }

    #[test]
    fn sssp_unreachable_absent() {
        let g = Graph::from_edges(vec![(0, 1), (2, 3)]);
        let d = sssp(&g, 0);
        assert!(d.contains_key(&1));
        assert!(!d.contains_key(&2));
        assert!(!d.contains_key(&3));
    }

    #[test]
    fn descendants_chain() {
        let g = chain(10);
        let d = descendants(&g, 0, 5);
        assert_eq!(d.len(), 6); // hops 0..=5
        assert_eq!(d[&5], 5);
        assert!(!d.contains_key(&6));
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(vec![(0, 1), (1, 2), (5, 6)]);
        let c = connected_components(&g);
        assert_eq!(c[&0], 0);
        assert_eq!(c[&1], 0);
        assert_eq!(c[&2], 0);
        assert_eq!(c[&5], 5);
        assert_eq!(c[&6], 5);
    }
}
