//! Database instance and sessions.
//!
//! A [`Database`] is the engine's top-level object; each [`Session`] is the
//! analog of one server connection. The SQLoop middleware opens one session
//! per worker thread, which is how it obtains parallelism from the engine
//! without controlling its internals (paper §I): sessions executing
//! statements against *different* tables proceed concurrently because
//! locking is per table.

use crate::ast::Statement;
use crate::catalog::Catalog;
use crate::dialect_check::validate;
use crate::digest::{normalize_sql, DigestEntry, DigestStats, SlowLog, SlowStatement};
use crate::error::{DbError, DbResult};
use crate::exec::{ExecLimits, Executor, QueryResult, StmtOutput};
use crate::op_profile::OpProfiler;
use crate::parser::{parse_script, parse_statement};
use crate::plan_cache::{substitute_params, CachedPlan, PlanCache, PlanCacheStats};
use crate::profile::EngineProfile;
use crate::stats::{Stats, StatsSnapshot};
use crate::txn::{apply_undo, IsolationLevel, LockManager, LockMode, UndoLog};
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default lock wait budget (compare MySQL's `innodb_lock_wait_timeout`).
pub const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Debug)]
struct Shared {
    catalog: Catalog,
    locks: LockManager,
    profile: EngineProfile,
    stats: Stats,
    next_session: AtomicU64,
    plan_cache: PlanCache,
    digests: DigestStats,
    slow: SlowLog,
    profiling: AtomicBool,
    /// Whether queries run on the vectorized batch pipeline (`true`, the
    /// default) or the row-at-a-time baseline.
    vectorized: AtomicBool,
    /// Rows-per-batch override for the vectorized pipeline (0 = use the
    /// profile default). Results are identical at any size; the
    /// equivalence suite exercises 1/3/default/4096.
    batch_size: AtomicU64,
    /// Armed panic-injection probe: `(table-name substring, shots left)`.
    panic_probe: Mutex<Option<(String, u64)>>,
}

/// A shared, thread-safe database instance.
///
/// Cloning is cheap (reference counted); all clones see the same data.
///
/// # Examples
/// ```
/// use sqldb::{Database, EngineProfile};
///
/// # fn main() -> Result<(), sqldb::DbError> {
/// let db = Database::new(EngineProfile::Postgres);
/// let mut session = db.connect();
/// session.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")?;
/// session.execute("INSERT INTO t VALUES (1, 0.5)")?;
/// let rows = session.query("SELECT v FROM t")?;
/// assert_eq!(rows.rows.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    shared: Arc<Shared>,
}

impl Database {
    /// Creates an empty database emulating `profile`.
    pub fn new(profile: EngineProfile) -> Database {
        Database {
            shared: Arc::new(Shared {
                catalog: Catalog::new(),
                locks: LockManager::new(),
                profile,
                stats: Stats::new(),
                next_session: AtomicU64::new(1),
                plan_cache: PlanCache::default(),
                digests: DigestStats::new(),
                slow: SlowLog::default(),
                profiling: AtomicBool::new(false),
                vectorized: AtomicBool::new(true),
                batch_size: AtomicU64::new(0),
                panic_probe: Mutex::new(None),
            }),
        }
    }

    /// Opens a new session (the analog of one JDBC connection).
    pub fn connect(&self) -> Session {
        let sid = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        Session {
            shared: self.shared.clone(),
            sid,
            in_txn: false,
            undo: UndoLog::new(),
            held: HashSet::new(),
            isolation: IsolationLevel::default(),
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            statement_timeout: None,
            max_result_rows: None,
        }
    }

    /// The engine profile this database emulates.
    pub fn profile(&self) -> EngineProfile {
        self.shared.profile
    }

    /// Snapshot of the execution statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Names of all user tables (sorted).
    pub fn table_names(&self) -> Vec<String> {
        self.shared.catalog.table_names()
    }

    /// Direct catalog access for tooling/tests.
    pub fn catalog(&self) -> &Catalog {
        &self.shared.catalog
    }

    /// Sets (or clears) the database-wide memory limit in bytes.
    ///
    /// Once set, inserts and intermediate materializations that would push
    /// tracked bytes past the limit fail with [`DbError::BudgetExceeded`];
    /// the failing statement rolls back and refunds its charges.
    pub fn set_memory_limit(&self, limit: Option<u64>) {
        self.shared.catalog.memory_budget().set_limit(limit);
    }

    /// The configured memory limit, if any.
    pub fn memory_limit(&self) -> Option<u64> {
        self.shared.catalog.memory_budget().limit()
    }

    /// Bytes currently charged against the memory budget.
    pub fn memory_used(&self) -> u64 {
        self.shared.catalog.memory_budget().used()
    }

    /// High-water mark of charged bytes.
    pub fn memory_peak(&self) -> u64 {
        self.shared.catalog.memory_budget().peak()
    }

    /// Snapshot of the shared plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.shared.plan_cache.stats()
    }

    /// Caps how many parsed plans the database keeps (LRU beyond the cap).
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.shared.plan_cache.set_capacity(capacity);
    }

    /// All statement-digest entries, sorted by total time descending.
    pub fn digest_stats(&self) -> Vec<DigestEntry> {
        self.shared.digests.snapshot()
    }

    /// The top-`k` statement families by plan-cache misses — the miss
    /// attribution view: which families keep being re-parsed.
    pub fn digest_top_misses(&self, k: usize) -> Vec<DigestEntry> {
        self.shared.digests.top_misses(k)
    }

    /// Turns digest collection on or off (on by default).
    pub fn set_digests_enabled(&self, on: bool) {
        self.shared.digests.set_enabled(on);
    }

    /// Whether digest collection is currently on.
    pub fn digests_enabled(&self) -> bool {
        self.shared.digests.enabled()
    }

    /// Drops all digest entries (collection state is unchanged).
    pub fn reset_digests(&self) {
        self.shared.digests.reset();
    }

    /// Turns per-operator runtime profiling on or off (off by default).
    /// While on, every statement execution flushes per-operator
    /// rows-out / calls / elapsed aggregates into the process metrics
    /// registry under `sqldb.op.<kind>.*`.
    pub fn set_profiling(&self, on: bool) {
        self.shared.profiling.store(on, Ordering::Relaxed);
    }

    /// Whether per-operator profiling is on.
    pub fn profiling(&self) -> bool {
        self.shared.profiling.load(Ordering::Relaxed)
    }

    /// Selects the query execution mode: `true` (the default) runs queries
    /// on the vectorized columnar batch pipeline, `false` on the
    /// row-at-a-time baseline. Both produce identical results; the row path
    /// exists for benchmarking and equivalence testing.
    pub fn set_vectorized(&self, on: bool) {
        self.shared.vectorized.store(on, Ordering::Relaxed);
    }

    /// Whether queries run on the vectorized batch pipeline.
    pub fn vectorized(&self) -> bool {
        self.shared.vectorized.load(Ordering::Relaxed)
    }

    /// Overrides the profile's rows-per-batch for the vectorized pipeline
    /// (`None` restores the profile default). Any size produces identical
    /// results — this knob exists for tuning and the equivalence suite.
    pub fn set_batch_size(&self, rows: Option<usize>) {
        self.shared
            .batch_size
            .store(rows.unwrap_or(0) as u64, Ordering::Relaxed);
    }

    /// The configured rows-per-batch override (`None` = profile default).
    pub fn batch_size(&self) -> Option<usize> {
        match self.shared.batch_size.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n as usize),
        }
    }

    /// Configures the slow-statement log: statements at or over
    /// `threshold_us` are recorded (0 disables), keeping every
    /// `sample_every`-th qualifying statement.
    pub fn set_slow_log(&self, threshold_us: u64, sample_every: u64) {
        self.shared.slow.configure(threshold_us, sample_every);
    }

    /// Current slow-log `(threshold_us, sample_every)`.
    pub fn slow_log_config(&self) -> (u64, u64) {
        self.shared.slow.config()
    }

    /// Retained slow-statement records, oldest first.
    pub fn slow_log(&self) -> Vec<SlowStatement> {
        self.shared.slow.snapshot()
    }

    /// Statements that crossed the slow-log threshold (sampled or not).
    pub fn slow_log_over_threshold(&self) -> u64 {
        self.shared.slow.over_threshold()
    }

    /// Drops slow-log records and resets its counters.
    pub fn reset_slow_log(&self) {
        self.shared.slow.reset();
    }

    /// Arms the panic-injection probe (a test hook for panic-recovery
    /// paths): the next `times` statements whose lock set contains a table
    /// name containing `pattern` panic *after* acquiring their locks and
    /// *before* touching any data — the worst moment, because the session
    /// still owns entries in the shared lock table. Pass `None` to disarm.
    ///
    /// Callers that absorb the panic with `catch_unwind` must call
    /// [`Session::recover_after_panic`] (or drop the session) to release
    /// those locks and undo any open transaction.
    pub fn set_panic_probe(&self, pattern: Option<&str>, times: u64) {
        *self.shared.panic_probe.lock() = pattern.map(|p| (p.to_string(), times));
    }
}

/// A prepared statement: the SQL is parsed and validated once, then executed
/// any number of times — with `?` placeholders filled per execution.
///
/// Handles are cheap to clone and survive DDL: a handle whose underlying
/// plan was outdated by a schema change transparently re-prepares on its
/// next execution (stale plans can never touch stale data, because binding
/// always runs against the live catalog).
#[derive(Debug, Clone)]
pub struct StmtHandle {
    sql: Arc<str>,
    digest: Arc<str>,
    param_count: usize,
    plan: Arc<Mutex<Arc<CachedPlan>>>,
}

impl StmtHandle {
    /// The SQL text this handle was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The statement-family digest ([`normalize_sql`]) of the handle's
    /// SQL, precomputed at prepare time.
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Number of `?` placeholders the statement declares.
    pub fn param_count(&self) -> usize {
        self.param_count
    }
}

/// One connection's execution context: autocommit/transaction state, held
/// locks, and isolation level.
///
/// Dropping a session rolls back any open transaction and releases its locks.
#[derive(Debug)]
pub struct Session {
    shared: Arc<Shared>,
    sid: u64,
    in_txn: bool,
    undo: UndoLog,
    held: HashSet<String>,
    isolation: IsolationLevel,
    lock_timeout: Duration,
    statement_timeout: Option<Duration>,
    max_result_rows: Option<u64>,
}

impl Session {
    /// This session's id (unique within the database).
    pub fn id(&self) -> u64 {
        self.sid
    }

    /// Sets the transaction isolation level (JDBC
    /// `Connection.setTransactionIsolation` analog).
    pub fn set_isolation(&mut self, level: IsolationLevel) {
        self.isolation = level;
    }

    /// Sets the lock wait budget.
    pub fn set_lock_timeout(&mut self, timeout: Duration) {
        self.lock_timeout = timeout;
    }

    /// Sets (or clears) the per-statement execution deadline. Statements
    /// running longer fail with [`DbError::Timeout`] and roll back.
    pub fn set_statement_timeout(&mut self, timeout: Option<Duration>) {
        self.statement_timeout = timeout.filter(|d| !d.is_zero());
    }

    /// The per-statement execution deadline, if any.
    pub fn statement_timeout(&self) -> Option<Duration> {
        self.statement_timeout
    }

    /// Sets (or clears) the cap on rows a query may return. Queries
    /// producing more fail with [`DbError::BudgetExceeded`].
    pub fn set_max_result_rows(&mut self, max: Option<u64>) {
        self.max_result_rows = max;
    }

    /// True while a `BEGIN` transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.in_txn
    }

    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    /// Parse, validation, lock-timeout and execution errors. A failed
    /// statement is rolled back atomically; an open transaction stays usable.
    pub fn execute(&mut self, sql: &str) -> DbResult<StmtOutput> {
        let (plan, plan_hit) = self.plan_for(sql)?;
        if !self.shared.digests.enabled() && self.shared.slow.config().0 == 0 {
            return self.execute_statement(&plan.stmt);
        }
        let started = std::time::Instant::now();
        let result = self.execute_statement(&plan.stmt);
        self.observe_statement(None, sql, started, &result, plan_hit);
        result
    }

    /// Records one finished statement into the digest table and slow log.
    fn observe_statement(
        &self,
        digest: Option<&str>,
        sql: &str,
        started: std::time::Instant,
        result: &DbResult<StmtOutput>,
        plan_hit: Option<bool>,
    ) {
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let (rows, error) = match result {
            Ok(StmtOutput::Rows(r)) => (r.rows.len() as u64, false),
            Ok(StmtOutput::Affected(n)) => (*n, false),
            Ok(StmtOutput::Done) => (0, false),
            Err(_) => (0, true),
        };
        self.shared
            .digests
            .record(digest, sql, elapsed_us, rows, error, plan_hit);
        self.shared.slow.record(sql, elapsed_us, rows);
    }

    /// Fetches a still-valid cached plan for `sql`, or parses one — caching
    /// it when the statement is cacheable (queries and DML; one-shot DDL
    /// would only churn the LRU, see [`crate::plan_cache::is_cacheable`]).
    ///
    /// The second element attributes the plan-cache outcome: `Some(true)`
    /// for a hit, `Some(false)` for a fresh parse of a cacheable
    /// statement, `None` for uncacheable statements.
    fn plan_for(&self, sql: &str) -> DbResult<(Arc<CachedPlan>, Option<bool>)> {
        let key = PlanCache::key(self.shared.profile, sql);
        if let Some(plan) = self.shared.plan_cache.get(&key) {
            return Ok((plan, Some(true)));
        }
        let started = std::time::Instant::now();
        let stmt = parse_statement(sql)?;
        let (plan, outcome) = if crate::plan_cache::is_cacheable(&stmt) {
            self.shared.plan_cache.count_miss();
            let (reads, writes) = collect_lock_sets(&stmt, &self.shared.catalog);
            let deps = reads.union(&writes).cloned().collect();
            (self.shared.plan_cache.insert(key, stmt, deps), Some(false))
        } else {
            (self.shared.plan_cache.uncached(stmt), None)
        };
        obs::global()
            .histogram("sqldb.plan")
            .observe(started.elapsed());
        Ok((plan, outcome))
    }

    /// Parses and validates `sql` once, returning a reusable handle.
    /// `?` placeholders become positional parameters of the handle.
    ///
    /// # Errors
    /// Parse errors only; execution errors surface per execution.
    pub fn prepare(&mut self, sql: &str) -> DbResult<StmtHandle> {
        let started = std::time::Instant::now();
        let (plan, _) = self.plan_for(sql)?;
        obs::global()
            .histogram("sqldb.prepare")
            .observe(started.elapsed());
        Ok(StmtHandle {
            sql: Arc::from(sql),
            digest: Arc::from(normalize_sql(sql)),
            param_count: plan.param_count,
            plan: Arc::new(Mutex::new(plan)),
        })
    }

    /// Executes a prepared statement with `params` filling its `?`
    /// placeholders (in lexical order).
    ///
    /// If DDL outdated the handle's plan since it was prepared, the
    /// statement is transparently re-prepared first.
    ///
    /// # Errors
    /// [`DbError::Invalid`] on parameter-count mismatch, plus everything
    /// [`Session::execute`] can return.
    pub fn execute_prepared(
        &mut self,
        handle: &StmtHandle,
        params: &[Value],
    ) -> DbResult<StmtOutput> {
        if params.len() != handle.param_count {
            return Err(DbError::Invalid(format!(
                "prepared statement takes {} parameter(s) but {} were bound",
                handle.param_count,
                params.len()
            )));
        }
        let (plan, plan_hit) = {
            let pinned = handle.plan.lock().clone();
            if self.shared.plan_cache.is_current(&pinned) {
                self.shared.plan_cache.note_hit();
                (pinned, Some(true))
            } else {
                // transparent re-prepare after DDL (counted as miss +
                // invalidation by the cache lookup inside plan_for)
                let (fresh, outcome) = self.plan_for(&handle.sql)?;
                *handle.plan.lock() = fresh.clone();
                (fresh, outcome)
            }
        };
        let started = std::time::Instant::now();
        let result = if handle.param_count == 0 {
            self.execute_statement(&plan.stmt)
        } else {
            let stmt = substitute_params(&plan.stmt, params)?;
            self.execute_statement(&stmt)
        };
        obs::global()
            .histogram("sqldb.execute_prepared")
            .observe(started.elapsed());
        self.observe_statement(
            Some(&handle.digest),
            &handle.sql,
            started,
            &result,
            plan_hit,
        );
        result
    }

    /// Executes an already-parsed statement.
    ///
    /// # Errors
    /// See [`Session::execute`].
    pub fn execute_statement(&mut self, stmt: &Statement) -> DbResult<StmtOutput> {
        let started = std::time::Instant::now();
        let result = self.execute_statement_inner(stmt);
        // per-kind latency into the process registry (DESIGN.md §10);
        // the name set is small and fixed, so the lookup is a read-lock hit
        obs::global()
            .histogram(&format!("sqldb.stmt.{}", stmt.kind_label()))
            .observe(started.elapsed());
        result
    }

    fn execute_statement_inner(&mut self, stmt: &Statement) -> DbResult<StmtOutput> {
        self.shared.stats.add_statements(1);
        match stmt {
            Statement::Begin => {
                if self.in_txn {
                    return Err(DbError::Invalid("transaction already open".into()));
                }
                self.in_txn = true;
                return Ok(StmtOutput::Done);
            }
            Statement::Commit => {
                self.commit()?;
                return Ok(StmtOutput::Done);
            }
            Statement::Rollback => {
                self.rollback()?;
                return Ok(StmtOutput::Done);
            }
            _ => {}
        }
        validate(stmt, &self.shared.profile.dialect())?;

        // plan and acquire logical locks in sorted order (deadlock avoidance)
        let (reads, writes) = collect_lock_sets(stmt, &self.shared.catalog);
        let mut all: Vec<&String> = reads.union(&writes).collect();
        all.sort();
        let mut newly_shared: Vec<String> = Vec::new();
        for name in all {
            let mode = if writes.contains(name) {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            self.shared.locks.acquire(
                self.sid,
                name,
                mode,
                self.lock_timeout,
                &self.shared.stats,
            )?;
            self.held.insert(name.clone());
            if mode == LockMode::Shared {
                newly_shared.push(name.clone());
            }
        }

        // the armed panic probe fires here — locks acquired, no data
        // touched yet — so recovery paths are exercised while this
        // session still owns entries in the shared lock table
        self.maybe_fire_panic_probe(&reads, &writes);

        // resolve the owning table up front: execution removes the
        // registration, but its cached plans must be outdated afterwards
        let dropped_index_table = match stmt {
            Statement::DropIndex { name, .. } => self.shared.catalog.index_table(name),
            _ => None,
        };

        let mark = self.undo.len();
        let profiler = if self.shared.profiling.load(Ordering::Relaxed) {
            Some(OpProfiler::new())
        } else {
            None
        };
        let mut executor = Executor::new(
            &self.shared.catalog,
            self.shared.profile,
            &self.shared.stats,
        )
        .with_limits(ExecLimits {
            max_rows: self.max_result_rows,
            deadline: self
                .statement_timeout
                .map(|t| std::time::Instant::now() + t),
        })
        .with_vectorized(self.shared.vectorized.load(Ordering::Relaxed))
        .with_batch_size(match self.shared.batch_size.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n as usize),
        });
        if let Some(p) = profiler.as_ref() {
            executor = executor.with_profiler(p);
        }
        let result = executor.run_statement(stmt, &mut self.undo);
        if let Some(p) = profiler.as_ref() {
            flush_op_profile(p);
        }
        match result {
            Ok(output) => {
                // DDL outdates cached plans depending on the changed object
                match stmt {
                    Statement::CreateTable(ct) => self.shared.plan_cache.bump_table(&ct.name),
                    Statement::DropTable { name, .. } => self.shared.plan_cache.bump_table(name),
                    Statement::CreateIndex(ci) => self.shared.plan_cache.bump_table(&ci.table),
                    Statement::DropIndex { .. } => {
                        if let Some(t) = &dropped_index_table {
                            self.shared.plan_cache.bump_table(t);
                        }
                    }
                    Statement::CreateView(_) | Statement::DropView { .. } => {
                        self.shared.plan_cache.bump_views();
                    }
                    _ => {}
                }
                if self.in_txn {
                    // ReadCommitted drops read locks at statement end
                    if self.isolation == IsolationLevel::ReadCommitted {
                        for name in newly_shared {
                            if !writes.contains(&name) {
                                self.shared.locks.release(self.sid, &name);
                                self.held.remove(&name);
                            }
                        }
                    }
                } else {
                    self.undo.clear();
                    self.release_all();
                }
                Ok(output)
            }
            Err(e) => {
                // statement-level atomicity
                let tail = self.undo.split_off(mark);
                let _ = apply_undo(&self.shared.catalog, tail);
                if !self.in_txn {
                    self.release_all();
                }
                Err(e)
            }
        }
    }

    /// Executes a `;`-separated script, stopping at the first error.
    ///
    /// # Errors
    /// See [`Session::execute`]; earlier statements keep their effects
    /// according to autocommit/transaction state.
    pub fn execute_script(&mut self, sql: &str) -> DbResult<Vec<StmtOutput>> {
        let stmts = parse_script(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Executes a query statement and returns its rows.
    ///
    /// # Errors
    /// As [`Session::execute`], plus [`DbError::Invalid`] if the statement
    /// is not a query.
    pub fn query(&mut self, sql: &str) -> DbResult<QueryResult> {
        match self.execute(sql)? {
            StmtOutput::Rows(r) => Ok(r),
            _ => Err(DbError::Invalid("statement did not return rows".into())),
        }
    }

    /// Opens a transaction.
    ///
    /// # Errors
    /// Returns [`DbError::Invalid`] when one is already open.
    pub fn begin(&mut self) -> DbResult<()> {
        self.execute_statement(&Statement::Begin).map(|_| ())
    }

    /// Commits the open transaction (no-op when autocommitting).
    ///
    /// # Errors
    /// Currently infallible; returns `DbResult` for API stability.
    pub fn commit(&mut self) -> DbResult<()> {
        self.undo.clear();
        self.release_all();
        self.in_txn = false;
        Ok(())
    }

    /// Rolls back the open transaction (no-op when autocommitting).
    ///
    /// # Errors
    /// Propagates storage errors from undo application (not expected).
    pub fn rollback(&mut self) -> DbResult<()> {
        let ops = self.undo.take_all();
        let result = apply_undo(&self.shared.catalog, ops);
        self.release_all();
        self.in_txn = false;
        result
    }

    fn release_all(&mut self) {
        if !self.held.is_empty() {
            self.shared.locks.release_all(self.sid, &self.held);
            self.held.clear();
        }
    }

    /// Fires the database's panic probe when armed and matched; see
    /// [`Database::set_panic_probe`].
    fn maybe_fire_panic_probe(&self, reads: &HashSet<String>, writes: &HashSet<String>) {
        let mut probe = self.shared.panic_probe.lock();
        let Some((pattern, times)) = probe.as_mut() else {
            return;
        };
        if *times == 0
            || !reads
                .iter()
                .chain(writes.iter())
                .any(|t| t.contains(&**pattern))
        {
            return;
        }
        *times -= 1;
        let fired = pattern.clone();
        if *times == 0 {
            *probe = None;
        }
        drop(probe);
        panic!("sqldb: injected panic probe on {fired}");
    }

    /// Puts the session back into a usable state after a panic was caught
    /// unwinding through one of its statements: applies any pending undo,
    /// releases every lock the session still holds in the shared lock
    /// table, and closes the open transaction. Equivalent to the rollback
    /// a dropped session performs, for callers that keep the session alive
    /// behind a `catch_unwind` boundary.
    pub fn recover_after_panic(&mut self) {
        let _ = self.rollback();
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // best-effort rollback; never panic in drop
        let ops = self.undo.take_all();
        let _ = apply_undo(&self.shared.catalog, ops);
        self.release_all();
    }
}

/// Flushes a statement's operator-profile tree into the process metrics
/// registry: per operator kind (first word of the label, lowercased),
/// `sqldb.op.<kind>.rows_out`, `.calls` and `.time_us` counters. Times
/// are inclusive of children, so kinds are comparable to each other only
/// as an attribution hint, not a strict decomposition.
fn flush_op_profile(prof: &OpProfiler) {
    let registry = obs::global();
    for root in prof.take() {
        let mut nodes = Vec::new();
        root.flatten(&mut nodes);
        for node in nodes {
            let kind = node
                .label
                .split_whitespace()
                .next()
                .unwrap_or("op")
                .to_ascii_lowercase();
            registry
                .counter(&format!("sqldb.op.{kind}.rows_out"))
                .add(node.rows_out);
            registry
                .counter(&format!("sqldb.op.{kind}.calls"))
                .add(node.calls);
            registry
                .counter(&format!("sqldb.op.{kind}.time_us"))
                .add(node.elapsed_us);
        }
    }
}

/// Computes the (read, write) table-lock sets for a statement, expanding
/// views to their underlying tables.
fn collect_lock_sets(stmt: &Statement, catalog: &Catalog) -> (HashSet<String>, HashSet<String>) {
    use crate::ast::*;
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();

    fn add_query(q: &SelectStmt, catalog: &Catalog, reads: &mut HashSet<String>, depth: usize) {
        add_set_expr(&q.body, catalog, reads, depth);
    }

    fn add_set_expr(s: &SetExpr, catalog: &Catalog, reads: &mut HashSet<String>, depth: usize) {
        match s {
            SetExpr::Select(sel) => {
                for tr in &sel.from {
                    add_table_ref(tr, catalog, reads, depth);
                }
            }
            SetExpr::Values(_) => {}
            SetExpr::SetOp { left, right, .. } => {
                add_set_expr(left, catalog, reads, depth);
                add_set_expr(right, catalog, reads, depth);
            }
        }
    }

    fn add_table_ref(tr: &TableRef, catalog: &Catalog, reads: &mut HashSet<String>, depth: usize) {
        add_factor(&tr.base, catalog, reads, depth);
        for j in &tr.joins {
            add_factor(&j.factor, catalog, reads, depth);
        }
    }

    fn add_factor(f: &TableFactor, catalog: &Catalog, reads: &mut HashSet<String>, depth: usize) {
        if depth > 16 {
            return;
        }
        match f {
            TableFactor::Table { name, .. } => {
                if let Some(view) = catalog.view(name) {
                    add_query(&view, catalog, reads, depth + 1);
                } else {
                    reads.insert(name.clone());
                }
            }
            TableFactor::Derived { subquery, .. } => add_query(subquery, catalog, reads, depth),
        }
    }

    match stmt {
        Statement::Select(q) => add_query(q, catalog, &mut reads, 0),
        Statement::Explain { stmt, .. } => {
            if let Statement::Select(q) = stmt.as_ref() {
                add_query(q, catalog, &mut reads, 0);
            }
        }
        Statement::Insert(i) => {
            writes.insert(i.table.clone());
            if let InsertSource::Select(q) = &i.source {
                add_query(q, catalog, &mut reads, 0);
            }
        }
        Statement::Update(u) => {
            writes.insert(u.table.clone());
            for tr in &u.from {
                add_table_ref(tr, catalog, &mut reads, 0);
            }
        }
        Statement::Delete { table, .. } | Statement::Truncate { name: table } => {
            writes.insert(table.clone());
        }
        Statement::CreateTable(ct) => {
            if let Some(q) = &ct.as_select {
                add_query(q, catalog, &mut reads, 0);
            }
        }
        Statement::CreateIndex(ci) => {
            writes.insert(ci.table.clone());
        }
        Statement::DropTable { name, .. } => {
            writes.insert(name.clone());
        }
        _ => {}
    }
    reads.retain(|t| !writes.contains(t));
    (reads, writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn db() -> Database {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")
            .unwrap();
        db
    }

    #[test]
    fn autocommit_roundtrip() {
        let db = db();
        let mut s = db.connect();
        let r = s.query("SELECT SUM(v) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(3.0));
    }

    #[test]
    fn transaction_commit_and_rollback() {
        let db = db();
        let mut s = db.connect();
        s.execute("BEGIN").unwrap();
        s.execute("UPDATE t SET v = 0.0").unwrap();
        s.execute("ROLLBACK").unwrap();
        assert_eq!(
            s.query("SELECT SUM(v) FROM t").unwrap().rows[0][0],
            Value::Float(3.0)
        );
        s.execute("BEGIN").unwrap();
        s.execute("UPDATE t SET v = 0.0").unwrap();
        s.execute("COMMIT").unwrap();
        assert_eq!(
            s.query("SELECT SUM(v) FROM t").unwrap().rows[0][0],
            Value::Float(0.0)
        );
    }

    #[test]
    fn statement_atomicity_on_error() {
        let db = db();
        let mut s = db.connect();
        // second row violates the primary key; the first must not persist
        let err = s.execute("INSERT INTO t VALUES (3, 3.0), (1, 9.9)");
        assert!(err.is_err());
        assert_eq!(
            s.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(2)
        );
    }

    #[test]
    fn failed_statement_keeps_transaction_usable() {
        let db = db();
        let mut s = db.connect();
        s.execute("BEGIN").unwrap();
        s.execute("UPDATE t SET v = 5.0 WHERE id = 1").unwrap();
        assert!(s.execute("INSERT INTO t VALUES (1, 0.0)").is_err());
        s.execute("COMMIT").unwrap();
        assert_eq!(
            s.query("SELECT v FROM t WHERE id = 1").unwrap().rows[0][0],
            Value::Float(5.0)
        );
    }

    #[test]
    fn dropped_session_rolls_back() {
        let db = db();
        {
            let mut s = db.connect();
            s.execute("BEGIN").unwrap();
            s.execute("DELETE FROM t").unwrap();
        } // dropped without commit
        let mut s = db.connect();
        assert_eq!(
            s.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(2)
        );
    }

    #[test]
    fn write_lock_blocks_concurrent_writer() {
        let db = db();
        let mut a = db.connect();
        a.execute("BEGIN").unwrap();
        a.execute("UPDATE t SET v = 9.0 WHERE id = 1").unwrap();
        let mut b = db.connect();
        b.set_lock_timeout(Duration::from_millis(50));
        assert!(matches!(
            b.execute("UPDATE t SET v = 8.0 WHERE id = 2"),
            Err(DbError::LockTimeout(_))
        ));
        a.execute("COMMIT").unwrap();
        b.execute("UPDATE t SET v = 8.0 WHERE id = 2").unwrap();
    }

    #[test]
    fn concurrent_sessions_on_disjoint_tables() {
        let db = db();
        let mut s = db.connect();
        s.execute("CREATE TABLE u (id INT PRIMARY KEY)").unwrap();
        let db2 = db.clone();
        let h = std::thread::spawn(move || {
            let mut s2 = db2.connect();
            for i in 0..100 {
                s2.execute(&format!("INSERT INTO u VALUES ({i})")).unwrap();
            }
        });
        for _ in 0..100 {
            s.query("SELECT COUNT(*) FROM t").unwrap();
        }
        h.join().unwrap();
        let n = s.query("SELECT COUNT(*) FROM u").unwrap();
        assert_eq!(n.rows[0][0], Value::Int(100));
    }

    #[test]
    fn script_execution() {
        let db = Database::new(EngineProfile::MariaDb);
        let mut s = db.connect();
        let out = s
            .execute_script(
                "CREATE TABLE x (a INT); INSERT INTO x VALUES (1); INSERT INTO x VALUES (2); SELECT COUNT(*) FROM x;",
            )
            .unwrap();
        assert_eq!(out.len(), 4);
        match &out[3] {
            StmtOutput::Rows(r) => assert_eq!(r.rows[0][0], Value::Int(2)),
            _ => panic!(),
        }
    }

    #[test]
    fn dialect_enforced_per_profile() {
        let db = Database::new(EngineProfile::MySql);
        let mut s = db.connect();
        s.execute("CREATE TABLE r (id INT PRIMARY KEY, d FLOAT)")
            .unwrap();
        s.execute("CREATE TABLE m (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        assert!(matches!(
            s.execute("UPDATE r SET d = m.v FROM m WHERE r.id = m.id"),
            Err(DbError::Unsupported(_))
        ));
        s.execute("UPDATE r JOIN m ON r.id = m.id SET d = m.v")
            .unwrap();
    }

    #[test]
    fn memory_limit_trips_rolls_back_and_lifts() {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE big (id INT PRIMARY KEY, s TEXT)")
            .unwrap();
        db.set_memory_limit(Some(db.memory_used() + 2000));
        let mut tripped = None;
        for i in 0..100i64 {
            let sql = format!("INSERT INTO big VALUES ({i}, '{}')", "x".repeat(100));
            if let Err(e) = s.execute(&sql) {
                tripped = Some((i, e));
                break;
            }
        }
        let (i, e) = tripped.expect("the memory limit must trip");
        assert!(matches!(e, DbError::BudgetExceeded(_)), "{e:?}");
        // lifting the limit resumes the workload; the tripped statement
        // was rolled back, so exactly i rows persisted
        db.set_memory_limit(None);
        assert_eq!(
            s.query("SELECT COUNT(*) FROM big").unwrap().rows[0][0],
            Value::Int(i)
        );
        s.execute("INSERT INTO big VALUES (999, 'y')").unwrap();
        assert!(db.memory_peak() >= db.memory_used());
    }

    #[test]
    fn statement_timeout_and_row_cap_per_session() {
        let db = db();
        let mut s = db.connect();
        s.set_max_result_rows(Some(1));
        assert!(matches!(
            s.query("SELECT * FROM t"),
            Err(DbError::BudgetExceeded(_))
        ));
        s.set_max_result_rows(None);
        s.set_statement_timeout(Some(Duration::ZERO));
        // zero clears rather than instantly failing everything
        assert_eq!(s.statement_timeout(), None);
        s.set_statement_timeout(Some(Duration::from_nanos(1)));
        assert!(matches!(
            s.query("SELECT * FROM t"),
            Err(DbError::Timeout(_))
        ));
        s.set_statement_timeout(None);
        assert!(s.query("SELECT * FROM t").is_ok());
    }

    #[test]
    fn stats_track_statements() {
        let db = db();
        let before = db.stats().statements;
        let mut s = db.connect();
        s.query("SELECT * FROM t").unwrap();
        assert!(db.stats().statements > before);
    }

    #[test]
    fn digests_aggregate_families_and_attribute_cache_outcomes() {
        let db = db();
        db.reset_digests();
        let mut s = db.connect();
        // same family, different literals: first parse is a miss, the
        // repeat of identical text is a hit, a new literal is a miss again
        s.query("SELECT v FROM t WHERE id = 1").unwrap();
        s.query("SELECT v FROM t WHERE id = 1").unwrap();
        s.query("SELECT v FROM t WHERE id = 2").unwrap();
        let snap = db.digest_stats();
        let fam = snap
            .iter()
            .find(|e| e.digest == "select v from t where id = ?")
            .expect("family tracked");
        assert_eq!(fam.calls, 3);
        assert_eq!(fam.plan_hits, 1);
        assert_eq!(fam.plan_misses, 2);
        assert_eq!(fam.rows, 3);
        assert_eq!(db.digest_top_misses(1)[0].digest, fam.digest);
    }

    #[test]
    fn prepared_executions_share_the_handle_digest() {
        let db = db();
        db.reset_digests();
        let mut s = db.connect();
        let h = s.prepare("SELECT v FROM t WHERE id = ?").unwrap();
        assert_eq!(h.digest(), "select v from t where id = ?");
        for i in 1..=2 {
            s.execute_prepared(&h, &[Value::Int(i)]).unwrap();
        }
        let snap = db.digest_stats();
        let fam = snap
            .iter()
            .find(|e| e.digest == "select v from t where id = ?")
            .expect("family tracked");
        assert_eq!(fam.calls, 2);
        assert_eq!(fam.plan_hits, 2, "pinned prepared plans count as hits");
    }

    #[test]
    fn digest_collection_can_be_disabled() {
        let db = db();
        db.reset_digests();
        db.set_digests_enabled(false);
        assert!(!db.digests_enabled());
        let mut s = db.connect();
        s.query("SELECT v FROM t").unwrap();
        assert!(db.digest_stats().is_empty());
        db.set_digests_enabled(true);
        s.query("SELECT v FROM t").unwrap();
        assert_eq!(db.digest_stats().len(), 1);
    }

    #[test]
    fn slow_log_captures_over_threshold_statements() {
        let db = db();
        db.set_slow_log(1, 1); // 1µs: everything qualifies
        let mut s = db.connect();
        s.query("SELECT * FROM t").unwrap();
        assert!(db.slow_log_over_threshold() >= 1);
        let log = db.slow_log();
        assert!(log.iter().any(|e| e.sql == "SELECT * FROM t"), "{log:?}");
        db.reset_slow_log();
        assert!(db.slow_log().is_empty());
        db.set_slow_log(0, 1); // off
        s.query("SELECT * FROM t").unwrap();
        assert_eq!(db.slow_log_over_threshold(), 0);
    }

    #[test]
    fn profiling_flushes_operator_counters() {
        let db = db();
        let registry = obs::global();
        let before = registry.counter("sqldb.op.seqscan.rows_out").get();
        let mut s = db.connect();
        s.query("SELECT * FROM t").unwrap();
        // off by default: no counters move
        assert_eq!(registry.counter("sqldb.op.seqscan.rows_out").get(), before);
        db.set_profiling(true);
        assert!(db.profiling());
        s.query("SELECT * FROM t").unwrap();
        let after = registry.counter("sqldb.op.seqscan.rows_out").get();
        assert_eq!(after - before, 2, "one scan of the 2-row table");
        db.set_profiling(false);
    }

    #[test]
    fn view_lock_expansion() {
        let db = db();
        let mut s = db.connect();
        s.execute("CREATE VIEW vw AS SELECT * FROM t").unwrap();
        // a reader of the view locks `t`; a writer of t must then wait
        s.execute("BEGIN").unwrap();
        s.set_isolation(IsolationLevel::Serializable);
        s.query("SELECT * FROM vw").unwrap();
        let mut w = db.connect();
        w.set_lock_timeout(Duration::from_millis(50));
        assert!(w.execute("DELETE FROM t").is_err());
        s.execute("COMMIT").unwrap();
        w.execute("DELETE FROM t").unwrap();
    }

    #[test]
    fn panic_probe_fires_after_locks_and_recovery_releases_them() {
        let db = db();
        let mut s = db.connect();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO t VALUES (9, 9.0)").unwrap();
        db.set_panic_probe(Some("t"), 1);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.execute("UPDATE t SET v = 0.0")
        }));
        assert!(panicked.is_err(), "probe should panic");
        // the panic left the session owning its locks: a second session
        // cannot write the table
        let mut w = db.connect();
        w.set_lock_timeout(Duration::from_millis(50));
        assert!(matches!(
            w.execute("DELETE FROM t"),
            Err(DbError::LockTimeout(_))
        ));
        // recovery rolls the open transaction back and releases the locks
        s.recover_after_panic();
        let rows = w.query("SELECT COUNT(*) FROM t WHERE id = 9").unwrap();
        assert_eq!(rows.rows[0][0], Value::Int(0), "insert undone");
        w.execute("DELETE FROM t").unwrap();
        // one-shot probe disarmed itself: statements run normally again
        s.execute("INSERT INTO t VALUES (1, 1.0)").unwrap();
    }

    #[test]
    fn panic_probe_ignores_unmatched_tables_and_disarms() {
        let db = db();
        let mut s = db.connect();
        db.set_panic_probe(Some("elsewhere"), 5);
        s.query("SELECT * FROM t").unwrap();
        db.set_panic_probe(None, 0);
        s.query("SELECT * FROM t").unwrap();
    }
}
