//! Driver traits and the in-process driver.
//!
//! Mirrors the slice of JDBC the paper's middleware depends on (§IV-A):
//! statement execution, result sets, statement batching, transaction
//! demarcation and isolation control — behind a [`Driver`] that can mint any
//! number of concurrent [`Connection`]s, which is how SQLoop turns worker
//! threads into engine-side parallelism.

use crate::wire::{MetricsCmd, PipelineStep};
use sqldb::{
    Database, DbError, DbResult, EngineProfile, IsolationLevel, QueryResult, Session, StmtHandle,
    StmtOutput, Value,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on prepared statements per connection (both in-process and on the
/// server side of the wire protocol) — guards against handle leaks.
pub const MAX_PREPARED_PER_CONNECTION: usize = 256;

static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique epoch identifying one physical connection.
/// Prepared-statement ids are only meaningful within the epoch that issued
/// them; transports mint a fresh epoch on every (re)connect so clients can
/// tell their handles went stale.
pub(crate) fn mint_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Result of running a pipeline of statements: the outputs of the
/// successful prefix, plus the error that stopped execution early (if any).
/// The failing step's index equals `outputs.len()`.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// Outputs of the steps that succeeded, in order.
    pub outputs: Vec<StmtOutput>,
    /// The error that stopped the pipeline, if it didn't complete.
    pub error: Option<DbError>,
}

/// One open connection to a database engine (JDBC `Connection` +
/// `Statement` rolled together, as SQLoop uses one statement per connection).
pub trait Connection: Send {
    /// Executes one SQL statement.
    ///
    /// # Errors
    /// Parse/validation/execution errors from the engine, or transport
    /// failures for remote connections.
    fn execute(&mut self, sql: &str) -> DbResult<StmtOutput>;

    /// Executes a batch of statements in one round trip (JDBC
    /// `addBatch`/`executeBatch`), stopping at the first error.
    ///
    /// # Errors
    /// The first failing statement's error; earlier statements keep their
    /// effects per the connection's autocommit/transaction state.
    fn execute_batch(&mut self, statements: &[String]) -> DbResult<Vec<StmtOutput>> {
        let mut out = Vec::with_capacity(statements.len());
        for s in statements {
            out.push(self.execute(s)?);
        }
        Ok(out)
    }

    /// Executes a query and returns its rows.
    ///
    /// # Errors
    /// As [`Connection::execute`], plus an error when the statement is not a
    /// query.
    fn query(&mut self, sql: &str) -> DbResult<QueryResult> {
        match self.execute(sql)? {
            StmtOutput::Rows(r) => Ok(r),
            _ => Err(DbError::Invalid("statement did not return rows".into())),
        }
    }

    /// Opens a transaction.
    ///
    /// # Errors
    /// When a transaction is already open.
    fn begin(&mut self) -> DbResult<()>;

    /// Commits the open transaction.
    ///
    /// # Errors
    /// Transport failures (remote); the engine commit itself is infallible.
    fn commit(&mut self) -> DbResult<()>;

    /// Rolls back the open transaction.
    ///
    /// # Errors
    /// Transport failures or undo-application errors.
    fn rollback(&mut self) -> DbResult<()>;

    /// Sets the transaction isolation level.
    ///
    /// # Errors
    /// Transport failures (remote).
    fn set_isolation(&mut self, level: IsolationLevel) -> DbResult<()>;

    /// Liveness probe. Runs a trivial statement; any engine response —
    /// even a statement error — proves the connection is alive. Only a
    /// connectivity failure counts as dead. Pools use this to discard
    /// broken connections instead of handing them out.
    fn ping(&mut self) -> bool {
        !matches!(self.execute("SELECT 1"), Err(DbError::Connection(_)))
    }

    /// Sets (or clears, with `None`) the per-statement execution deadline.
    /// Statements running longer fail with [`DbError::Timeout`].
    ///
    /// The default is a no-op returning `false` for transports that
    /// predate the capability; implementations return `true`.
    ///
    /// # Errors
    /// Transport failures (remote).
    fn set_statement_timeout(&mut self, timeout: Option<std::time::Duration>) -> DbResult<bool> {
        let _ = timeout;
        Ok(false)
    }

    /// Parses `sql` once on the engine side, returning a statement id and
    /// the number of `?` placeholders. The id is scoped to the current
    /// physical connection (see [`Connection::prepared_epoch`]).
    ///
    /// The default errors with [`DbError::Unsupported`] for transports
    /// predating the capability; callers fall back to plain `execute`.
    ///
    /// # Errors
    /// Parse errors, [`DbError::BudgetExceeded`] past
    /// [`MAX_PREPARED_PER_CONNECTION`], or transport failures.
    fn prepare_statement(&mut self, sql: &str) -> DbResult<(u64, usize)> {
        let _ = sql;
        Err(DbError::Unsupported(
            "this connection does not support prepared statements".into(),
        ))
    }

    /// Executes a statement prepared on this connection.
    ///
    /// # Errors
    /// [`DbError::NotFound`] for unknown ids (e.g. after a reconnect),
    /// parameter arity/type errors, and everything `execute` can return.
    fn execute_prepared(&mut self, stmt_id: u64, params: &[Value]) -> DbResult<StmtOutput> {
        let _ = (stmt_id, params);
        Err(DbError::Unsupported(
            "this connection does not support prepared statements".into(),
        ))
    }

    /// Discards a prepared statement. Unknown ids are ignored (close must
    /// be idempotent so retry paths can call it blindly).
    ///
    /// # Errors
    /// Transport failures (remote).
    fn close_prepared(&mut self, stmt_id: u64) -> DbResult<()> {
        let _ = stmt_id;
        Ok(())
    }

    /// Monotonic identifier of the physical connection backing this handle.
    /// Changes on reconnect; prepared ids minted under an older epoch are
    /// invalid. `0` means the transport never prepares (epoch-free).
    fn prepared_epoch(&self) -> u64 {
        0
    }

    /// Runs a sequence of steps, stopping at the first statement failure.
    /// Wire transports override this to send the whole sequence in one
    /// round-trip; the default executes step by step.
    ///
    /// # Errors
    /// The default never fails the call: executing step by step, even a
    /// dropped connection has a known position, so every error — transport
    /// ([`DbError::Connection`]) included — comes back inside the
    /// [`PipelineOutcome`] and callers can resume from the failing index.
    /// Overrides that ship the whole batch in one round-trip return `Err`
    /// on transport failures, where per-statement progress is unknown.
    fn run_pipeline(&mut self, steps: &[PipelineStep]) -> DbResult<PipelineOutcome> {
        let mut outputs = Vec::with_capacity(steps.len());
        for step in steps {
            let result = match step {
                PipelineStep::Execute(sql) => self.execute(sql),
                PipelineStep::Prepared { stmt_id, params } => {
                    self.execute_prepared(*stmt_id, params)
                }
            };
            match result {
                Ok(o) => outputs.push(o),
                Err(e) => {
                    return Ok(PipelineOutcome {
                        outputs,
                        error: Some(e),
                    })
                }
            }
        }
        Ok(PipelineOutcome {
            outputs,
            error: None,
        })
    }

    /// Evaluates a metrics command against the engine on the other side
    /// of this connection: live scrape, digest tables, slow log, and the
    /// profiling/slow-log switches. The typed helpers below are the
    /// intended entry points; this is the single transport hook they all
    /// route through.
    ///
    /// The default errors with [`DbError::Unsupported`] for transports
    /// predating the capability.
    ///
    /// # Errors
    /// Transport failures (remote), or [`DbError::Unsupported`].
    fn metrics(&mut self, cmd: &MetricsCmd) -> DbResult<StmtOutput> {
        let _ = cmd;
        Err(DbError::Unsupported(
            "this connection does not expose engine metrics".into(),
        ))
    }

    /// The engine's full Prometheus text scrape (registry series plus
    /// digest top-K and slow-log state).
    ///
    /// # Errors
    /// As [`Connection::metrics`], plus a malformed payload.
    fn metrics_prometheus(&mut self) -> DbResult<String> {
        match self.metrics(&MetricsCmd::Prometheus)? {
            StmtOutput::Rows(r) => match r.scalar() {
                Some(Value::Text(t)) => Ok(t.clone()),
                _ => Err(DbError::Connection("malformed metrics payload".into())),
            },
            other => Err(DbError::Connection(format!(
                "unexpected metrics output {other:?}"
            ))),
        }
    }

    /// Top `k` statement digests by total time (see
    /// [`crate::DIGEST_COLUMNS`] for the schema).
    ///
    /// # Errors
    /// As [`Connection::metrics`].
    fn digest_top(&mut self, k: u32) -> DbResult<QueryResult> {
        metrics_rows(self.metrics(&MetricsCmd::DigestTop(k))?)
    }

    /// Top `k` statement digests by plan-cache misses — the families whose
    /// texts never repeat, i.e. the answer to "where do my cache misses
    /// come from". Same schema as [`Connection::digest_top`].
    ///
    /// # Errors
    /// As [`Connection::metrics`].
    fn digest_top_misses(&mut self, k: u32) -> DbResult<QueryResult> {
        metrics_rows(self.metrics(&MetricsCmd::DigestTopMisses(k))?)
    }

    /// Recent slow statements (see [`crate::SLOW_LOG_COLUMNS`] for the
    /// schema).
    ///
    /// # Errors
    /// As [`Connection::metrics`].
    fn slow_log(&mut self) -> DbResult<QueryResult> {
        metrics_rows(self.metrics(&MetricsCmd::SlowLog)?)
    }

    /// Switches engine-side per-operator profiling on or off.
    ///
    /// # Errors
    /// As [`Connection::metrics`].
    fn set_profiling(&mut self, on: bool) -> DbResult<()> {
        self.metrics(&MetricsCmd::SetProfiling(on)).map(|_| ())
    }

    /// Configures the engine's slow-statement log: statements at or above
    /// `threshold_us` are counted, and every `sample_every`-th of them is
    /// kept with its text. `threshold_us == 0` disables the log.
    ///
    /// # Errors
    /// As [`Connection::metrics`].
    fn configure_slow_log(&mut self, threshold_us: u64, sample_every: u64) -> DbResult<()> {
        self.metrics(&MetricsCmd::SetSlowLog {
            threshold_us,
            sample_every,
        })
        .map(|_| ())
    }

    /// Clears the engine's digest table and slow log (counters and
    /// histograms in the process registry are unaffected).
    ///
    /// # Errors
    /// As [`Connection::metrics`].
    fn reset_engine_stats(&mut self) -> DbResult<()> {
        self.metrics(&MetricsCmd::ResetStats).map(|_| ())
    }

    /// The engine profile on the other side of this connection.
    fn profile(&self) -> EngineProfile;
}

/// Shapes a metrics read-command output into its result set.
fn metrics_rows(out: StmtOutput) -> DbResult<QueryResult> {
    match out {
        StmtOutput::Rows(r) => Ok(r),
        other => Err(DbError::Connection(format!(
            "unexpected metrics output {other:?}"
        ))),
    }
}

/// A connection factory (JDBC `DataSource` analog).
pub trait Driver: Send + Sync {
    /// Opens a new connection.
    ///
    /// # Errors
    /// Transport failures for remote drivers.
    fn connect(&self) -> DbResult<Box<dyn Connection>>;

    /// The target engine's profile.
    fn profile(&self) -> EngineProfile;

    /// A snapshot of the engine's execution statistics, when the driver can
    /// see the engine directly (in-process drivers). Remote drivers return
    /// `None`. Callers diff two snapshots for per-run numbers.
    fn engine_stats(&self) -> Option<sqldb::StatsSnapshot> {
        None
    }

    /// Sets (or clears) the engine-wide memory limit in bytes, when the
    /// driver can govern the engine directly. Returns `false` (the
    /// default) when the capability is unavailable (remote drivers govern
    /// server-side instead).
    fn set_memory_limit(&self, limit: Option<u64>) -> bool {
        let _ = limit;
        false
    }

    /// Bytes the engine currently has charged against its memory budget,
    /// when observable from this driver.
    fn memory_used(&self) -> Option<u64> {
        None
    }

    /// Plan-cache counters of the engine, when observable from this driver
    /// (in-process drivers). Remote drivers return `None` — the counters
    /// live with the server process.
    fn plan_cache_stats(&self) -> Option<sqldb::PlanCacheStats> {
        None
    }

    /// The engine's statement-digest table (all families, sorted by total
    /// time), when observable from this driver. Remote drivers return
    /// `None` — scrape through [`Connection::digest_top`] instead.
    fn digest_stats(&self) -> Option<Vec<sqldb::DigestEntry>> {
        None
    }

    /// Top `k` digest families by plan-cache misses, when observable from
    /// this driver.
    fn digest_top_misses(&self, k: usize) -> Option<Vec<sqldb::DigestEntry>> {
        let _ = k;
        None
    }

    /// Switches engine-side per-operator profiling, when the driver can
    /// govern the engine directly. Returns `false` (the default) when the
    /// capability is unavailable.
    fn set_profiling(&self, on: bool) -> bool {
        let _ = on;
        false
    }
}

/// In-process driver wrapping a [`Database`] instance directly.
#[derive(Debug, Clone)]
pub struct LocalDriver {
    db: Database,
}

impl LocalDriver {
    /// Wraps a database.
    pub fn new(db: Database) -> LocalDriver {
        LocalDriver { db }
    }

    /// The wrapped database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Driver for LocalDriver {
    fn connect(&self) -> DbResult<Box<dyn Connection>> {
        Ok(Box::new(
            LocalConnection::from_session(self.db.connect(), self.db.profile())
                .with_database(self.db.clone()),
        ))
    }

    fn profile(&self) -> EngineProfile {
        self.db.profile()
    }

    fn engine_stats(&self) -> Option<sqldb::StatsSnapshot> {
        Some(self.db.stats())
    }

    fn set_memory_limit(&self, limit: Option<u64>) -> bool {
        self.db.set_memory_limit(limit);
        true
    }

    fn memory_used(&self) -> Option<u64> {
        Some(self.db.memory_used())
    }

    fn plan_cache_stats(&self) -> Option<sqldb::PlanCacheStats> {
        Some(self.db.plan_cache_stats())
    }

    fn digest_stats(&self) -> Option<Vec<sqldb::DigestEntry>> {
        Some(self.db.digest_stats())
    }

    fn digest_top_misses(&self, k: usize) -> Option<Vec<sqldb::DigestEntry>> {
        Some(self.db.digest_top_misses(k))
    }

    fn set_profiling(&self, on: bool) -> bool {
        self.db.set_profiling(on);
        true
    }
}

/// In-process connection: a thin adapter over a [`Session`].
#[derive(Debug)]
pub struct LocalConnection {
    session: Session,
    profile: EngineProfile,
    epoch: u64,
    prepared: HashMap<u64, StmtHandle>,
    next_stmt_id: u64,
    /// Engine handle for metrics commands; `None` for bare sessions, which
    /// makes [`Connection::metrics`] answer `Unsupported`.
    db: Option<Database>,
}

impl LocalConnection {
    /// Wraps an existing session.
    pub fn from_session(session: Session, profile: EngineProfile) -> LocalConnection {
        LocalConnection {
            session,
            profile,
            epoch: mint_epoch(),
            prepared: HashMap::new(),
            next_stmt_id: 1,
            db: None,
        }
    }

    /// Attaches the engine handle, enabling [`Connection::metrics`] on
    /// this connection. [`LocalDriver::connect`] does this automatically.
    #[must_use]
    pub fn with_database(mut self, db: Database) -> LocalConnection {
        self.db = Some(db);
        self
    }
}

impl Connection for LocalConnection {
    fn execute(&mut self, sql: &str) -> DbResult<StmtOutput> {
        self.session.execute(sql)
    }

    fn prepare_statement(&mut self, sql: &str) -> DbResult<(u64, usize)> {
        if self.prepared.len() >= MAX_PREPARED_PER_CONNECTION {
            return Err(DbError::BudgetExceeded(format!(
                "connection holds {MAX_PREPARED_PER_CONNECTION} prepared statements; close some first"
            )));
        }
        let handle = self.session.prepare(sql)?;
        let id = self.next_stmt_id;
        self.next_stmt_id += 1;
        let param_count = handle.param_count();
        self.prepared.insert(id, handle);
        Ok((id, param_count))
    }

    fn execute_prepared(&mut self, stmt_id: u64, params: &[Value]) -> DbResult<StmtOutput> {
        let handle = self
            .prepared
            .get(&stmt_id)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("prepared statement {stmt_id}")))?;
        self.session.execute_prepared(&handle, params)
    }

    fn close_prepared(&mut self, stmt_id: u64) -> DbResult<()> {
        self.prepared.remove(&stmt_id);
        Ok(())
    }

    fn prepared_epoch(&self) -> u64 {
        self.epoch
    }

    fn begin(&mut self) -> DbResult<()> {
        self.session.begin()
    }

    fn commit(&mut self) -> DbResult<()> {
        self.session.commit()
    }

    fn rollback(&mut self) -> DbResult<()> {
        self.session.rollback()
    }

    fn set_isolation(&mut self, level: IsolationLevel) -> DbResult<()> {
        self.session.set_isolation(level);
        Ok(())
    }

    fn set_statement_timeout(&mut self, timeout: Option<std::time::Duration>) -> DbResult<bool> {
        self.session.set_statement_timeout(timeout);
        Ok(true)
    }

    fn metrics(&mut self, cmd: &MetricsCmd) -> DbResult<StmtOutput> {
        match &self.db {
            Some(db) => Ok(crate::metrics_cmd::eval_metrics_cmd(db, cmd)),
            None => Err(DbError::Unsupported(
                "this connection wraps a bare session; metrics need a database handle".into(),
            )),
        }
    }

    fn profile(&self) -> EngineProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqldb::Value;

    fn driver() -> LocalDriver {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")
            .unwrap();
        LocalDriver::new(db)
    }

    #[test]
    fn local_driver_roundtrip() {
        let d = driver();
        let mut c = d.connect().unwrap();
        let r = c.query("SELECT SUM(v) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(3.0));
        assert_eq!(c.profile(), EngineProfile::Postgres);
    }

    #[test]
    fn batch_execution() {
        let d = driver();
        let mut c = d.connect().unwrap();
        let out = c
            .execute_batch(&[
                "INSERT INTO t VALUES (3, 3.0)".into(),
                "INSERT INTO t VALUES (4, 4.0)".into(),
            ])
            .unwrap();
        assert_eq!(out.len(), 2);
        let r = c.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4));
    }

    #[test]
    fn transactions_through_the_trait() {
        let d = driver();
        let mut c = d.connect().unwrap();
        c.begin().unwrap();
        c.execute("DELETE FROM t").unwrap();
        c.rollback().unwrap();
        let r = c.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn concurrent_connections_from_one_driver() {
        let d = std::sync::Arc::new(driver());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut c = d.connect().unwrap();
                    c.execute(&format!("INSERT INTO t VALUES ({}, 0.0)", 10 + i))
                        .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut c = d.connect().unwrap();
        let r = c.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(6));
    }
}
