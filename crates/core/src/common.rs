//! Helpers shared by the single-threaded and parallel executors: CTE table
//! creation with type inference, AST table-reference rewriting, and
//! termination-condition evaluation.

use crate::error::{SqloopError, SqloopResult};
use crate::grammar::{DataMode, Termination};
use crate::translate::{translate_query_to_sql, translate_sql};
use dbcp::{Connection, PreparedStatement};
use obs::{EventKind, TraceHandle};
use sqldb::ast::{SelectStmt, SetExpr, TableFactor};
use sqldb::{DataType, DbError, EngineProfile, StmtOutput, Value};
use std::sync::Arc;

/// Quoted-name helpers for the scratch objects SQLoop manages.
#[derive(Debug, Clone)]
pub struct CteNames {
    /// The CTE (and result table / view) name.
    pub table: String,
}

impl CteNames {
    /// Builds the name set for a CTE.
    pub fn new(cte_name: &str) -> CteNames {
        CteNames {
            table: cte_name.to_owned(),
        }
    }

    /// The single-threaded executor's temporary result table (`Rtmp`).
    pub fn tmp(&self) -> String {
        format!("{}__tmp", self.table)
    }

    /// Semi-naive working table for recursion step `i % 2`.
    pub fn working(&self, parity: u64) -> String {
        format!("{}__w{}", self.table, parity % 2)
    }

    /// The previous-iteration snapshot for `DELTA` termination conditions.
    /// The paper lets the user reference it as `<R>delta`.
    pub fn delta_snapshot(&self) -> String {
        format!("{}delta", self.table)
    }

    /// Partition table `Rpt{i}`.
    pub fn partition(&self, i: usize) -> String {
        format!("{}__pt{}", self.table, i)
    }

    /// The materialized constant join (`Rmjoin`).
    pub fn mjoin(&self) -> String {
        format!("{}__mjoin", self.table)
    }

    /// Message table created by partition `p`'s `seq`-th Compute task.
    pub fn message(&self, p: usize, seq: u64) -> String {
        format!("{}__msg_{}_{}", self.table, p, seq)
    }

    /// Reusable message slot `k` owned by partition `p`. Unlike
    /// [`CteNames::message`], slot names do not embed a per-round sequence
    /// number: the scheduler truncates and refills a bounded pool of slots,
    /// so every statement text is generation-stable and the engine's plan
    /// cache keeps hitting round after round.
    pub fn message_slot(&self, p: usize, k: usize) -> String {
        format!("{}__msgslot_{}_{}", self.table, p, k)
    }
}

/// Per-round plan-cache attribution: snapshots the process-wide
/// `sqldb.plan_cache.hit`/`.miss` counters at each round boundary and emits
/// one [`EventKind::PlanCache`] trace event carrying the round's deltas,
/// tagged with the scheduler mode. This makes "where do the parallel-mode
/// cache misses come from" answerable round by round from the trace,
/// without guessing from end-of-run totals.
///
/// The counters are process-wide, so concurrent runs in one process blur
/// each other's deltas — fine for the CLI and bench harness, which run one
/// loop at a time.
#[derive(Debug)]
pub struct PlanCacheProbe {
    hit: Arc<obs::Counter>,
    miss: Arc<obs::Counter>,
    last_hit: u64,
    last_miss: u64,
}

impl PlanCacheProbe {
    /// Starts a probe at the counters' current values.
    pub fn new() -> PlanCacheProbe {
        let reg = obs::global();
        let hit = reg.counter("sqldb.plan_cache.hit");
        let miss = reg.counter("sqldb.plan_cache.miss");
        let (last_hit, last_miss) = (hit.get(), miss.get());
        PlanCacheProbe {
            hit,
            miss,
            last_hit,
            last_miss,
        }
    }

    /// Emits one [`EventKind::PlanCache`] event with the hit/miss delta
    /// since the previous tick, tagged with the scheduler `mode`. The
    /// baseline always advances, so enabling the trace mid-run starts
    /// from current values rather than replaying history.
    pub fn tick(&mut self, trace: &TraceHandle, round: u64, mode: &str) {
        let (hit, miss) = (self.hit.get(), self.miss.get());
        let (dh, dm) = (hit - self.last_hit, miss - self.last_miss);
        self.last_hit = hit;
        self.last_miss = miss;
        if !trace.is_enabled() {
            return;
        }
        let pct = (dh * 100).checked_div(dh + dm).unwrap_or(100);
        trace.event(
            EventKind::PlanCache,
            None,
            Some(round),
            format!("mode={mode} hits={dh} misses={dm} hit_rate={pct}%"),
        );
    }
}

impl Default for PlanCacheProbe {
    fn default() -> PlanCacheProbe {
        PlanCacheProbe::new()
    }
}

/// The inferred shape of the CTE table `R`.
#[derive(Debug, Clone)]
pub struct CteSchema {
    /// Column names (lower-cased); index 0 is the key column `Rid`.
    pub columns: Vec<String>,
    /// Column types.
    pub types: Vec<DataType>,
}

impl CteSchema {
    /// The key column name (`Rid`, paper §III-A).
    pub fn key(&self) -> &str {
        &self.columns[0]
    }

    /// Renders the `CREATE TABLE` column list body; `with_key` adds
    /// `PRIMARY KEY` on the first column (the iterative CTE's `Rid`).
    pub fn create_columns_sql(&self, with_key: bool) -> String {
        self.columns
            .iter()
            .zip(&self.types)
            .enumerate()
            .map(|(i, (c, t))| {
                if i == 0 && with_key {
                    format!("{c} {t} PRIMARY KEY")
                } else {
                    format!("{c} {t}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Executes canonical SQL on `conn` after translating it for the engine.
///
/// # Errors
/// Translation or engine errors.
pub fn run(conn: &mut dyn Connection, canonical_sql: &str) -> SqloopResult<sqldb::StmtOutput> {
    let sql = translate_sql(canonical_sql, conn.profile())?;
    conn.execute(&sql).map_err(SqloopError::from)
}

/// Queries with canonical SQL after translation.
///
/// # Errors
/// Translation or engine errors.
pub fn run_query(
    conn: &mut dyn Connection,
    canonical_sql: &str,
) -> SqloopResult<sqldb::QueryResult> {
    let sql = translate_sql(canonical_sql, conn.profile())?;
    conn.query(&sql).map_err(SqloopError::from)
}

/// Creates the CTE table `R`, typed by probing the seed query with
/// `LIMIT 1`, and fills it with the seed result — entirely engine-side
/// (paper §IV-B: `CREATE TABLE` then `INSERT INTO R R0`).
///
/// `promote_to_float` makes every non-key integer column FLOAT; iterative
/// CTEs use it because seeds like `SELECT src, 0, 0.15` type columns from
/// literals while later iterations store fractional values (the real
/// engines solve this with SQL-level type inference the paper relies on).
///
/// # Errors
/// Seed execution errors, or arity mismatch with the declared column list.
pub fn create_cte_table(
    conn: &mut dyn Connection,
    name: &str,
    declared_columns: &[String],
    seed: &SelectStmt,
    promote_to_float: bool,
    with_key: bool,
) -> SqloopResult<CteSchema> {
    let profile = conn.profile();
    // probe for column names/types
    let mut probe = seed.clone();
    probe.limit = Some(probe.limit.map_or(16, |l| l.min(16)));
    let probe_sql = translate_query_to_sql(&probe, profile);
    let probe_result = conn.query(&probe_sql)?;

    let columns: Vec<String> = if declared_columns.is_empty() {
        probe_result.columns.clone()
    } else {
        if declared_columns.len() != probe_result.columns.len() {
            return Err(SqloopError::Semantic(format!(
                "CTE declares {} columns but its seed returns {}",
                declared_columns.len(),
                probe_result.columns.len()
            )));
        }
        declared_columns.to_vec()
    };
    let mut types = vec![None::<DataType>; columns.len()];
    for row in &probe_result.rows {
        for (i, v) in row.iter().enumerate() {
            if types[i].is_none() {
                types[i] = match v {
                    Value::Null => None,
                    Value::Int(_) => Some(DataType::Int),
                    Value::Float(_) => Some(DataType::Float),
                    Value::Text(_) => Some(DataType::Text),
                    Value::Bool(_) => Some(DataType::Bool),
                };
            }
        }
    }
    let types: Vec<DataType> = types
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let t = t.unwrap_or(DataType::Float);
            if promote_to_float && i > 0 && t == DataType::Int {
                DataType::Float
            } else {
                t
            }
        })
        .collect();
    let schema = CteSchema { columns, types };

    run(conn, &format!("DROP TABLE IF EXISTS {name}"))?;
    run(conn, &format!("DROP VIEW IF EXISTS {name}"))?;
    run(
        conn,
        &format!(
            "CREATE TABLE {name} ({})",
            schema.create_columns_sql(with_key)
        ),
    )?;
    // engine-side load: INSERT INTO R <seed>
    let seed_sql = translate_query_to_sql(seed, profile);
    conn.execute(&format!(
        "INSERT INTO {} {}",
        profile.dialect().quote(name),
        seed_sql
    ))?;
    Ok(schema)
}

/// Rewrites every reference to table `from` into `to` (preserving aliases),
/// implementing semi-naive evaluation's working-table substitution.
pub fn rewrite_table_refs(query: &SelectStmt, from: &str, to: &str) -> SelectStmt {
    let mut q = query.clone();
    rewrite_set_expr(&mut q.body, from, to);
    q
}

fn rewrite_set_expr(body: &mut SetExpr, from: &str, to: &str) {
    match body {
        SetExpr::Select(s) => {
            for tr in &mut s.from {
                rewrite_factor(&mut tr.base, from, to);
                for j in &mut tr.joins {
                    rewrite_factor(&mut j.factor, from, to);
                }
            }
        }
        SetExpr::Values(_) => {}
        SetExpr::SetOp { left, right, .. } => {
            rewrite_set_expr(left, from, to);
            rewrite_set_expr(right, from, to);
        }
    }
}

fn rewrite_factor(factor: &mut TableFactor, from: &str, to: &str) {
    match factor {
        TableFactor::Table { name, alias } => {
            if name == from {
                // keep the original name visible via an alias so column
                // qualifiers in the query still resolve
                if alias.is_none() {
                    *alias = Some(name.clone());
                }
                *name = to.to_owned();
            }
        }
        TableFactor::Derived { subquery, .. } => {
            rewrite_set_expr(&mut subquery.body, from, to);
        }
    }
}

/// Evaluates a data/delta termination condition (Table I, data rows).
///
/// # Errors
/// Engine errors from the user's expression query.
pub fn data_condition_satisfied(
    conn: &mut dyn Connection,
    cte_table: &str,
    query: &SelectStmt,
    mode: &DataMode,
) -> SqloopResult<bool> {
    let sql = translate_query_to_sql(query, conn.profile());
    let result = conn.query(&sql)?;
    match mode {
        DataMode::Any => Ok(!result.rows.is_empty()),
        DataMode::All => {
            let total = run_query(conn, &format!("SELECT COUNT(*) FROM {cte_table}"))?;
            let total = total.scalar().and_then(Value::as_i64).unwrap_or(0);
            Ok(result.rows.len() as i64 == total)
        }
        DataMode::Compare(cmp, threshold) => {
            let scalar = result.scalar().ok_or_else(|| {
                SqloopError::Semantic(
                    "termination expression with a comparison must return one value".into(),
                )
            })?;
            Ok(cmp.matches(scalar.total_cmp(threshold)))
        }
    }
}

/// Decides termination after one iteration.
///
/// * `Iterations(n)` — satisfied once `iterations_done >= n`.
/// * `Updates(n)` — satisfied once the last iteration updated ≤ n rows
///   (Example 3 of the paper uses `UNTIL 0 UPDATES` for "no more updates").
/// * data/delta forms — the user's expression query, per [`DataMode`].
///
/// # Errors
/// Engine errors from data/delta expression evaluation.
pub fn termination_satisfied(
    conn: &mut dyn Connection,
    cte_table: &str,
    tc: &Termination,
    iterations_done: u64,
    last_updates: u64,
) -> SqloopResult<bool> {
    match tc {
        Termination::Iterations(n) => Ok(iterations_done >= *n),
        Termination::Updates(n) => Ok(last_updates <= *n),
        Termination::Data { query, mode } | Termination::Delta { query, mode } => {
            data_condition_satisfied(conn, cte_table, query, mode)
        }
    }
}

/// Refreshes the `<R>delta` snapshot table from the live CTE table/view by
/// recreating it. Executors use this for the *initial* snapshot; the
/// per-round path is [`DeltaRefresher`], which rewrites in place so the
/// refresh runs no DDL.
///
/// # Errors
/// Engine errors.
pub fn refresh_delta_snapshot(conn: &mut dyn Connection, names: &CteNames) -> SqloopResult<()> {
    let snap = names.delta_snapshot();
    run(conn, &format!("DROP TABLE IF EXISTS {snap}"))?;
    run(
        conn,
        &format!("CREATE TABLE {snap} AS SELECT * FROM {}", names.table),
    )?;
    Ok(())
}

/// Per-round `<R>delta` refresh through prepared handles: `DELETE` +
/// `INSERT … SELECT` rewrite the snapshot in place, so the refresh runs no
/// DDL and every plan reading the snapshot (the user's `DELTA` termination
/// expression above all) stays in the engine's plan cache round after round.
#[derive(Debug)]
pub struct DeltaRefresher {
    table: String,
    snap: String,
    clear: PreparedStatement,
    fill: PreparedStatement,
}

impl DeltaRefresher {
    /// Builds (and prepares lazily) the refresh statements for `names`.
    ///
    /// # Errors
    /// Translation errors.
    pub fn new(names: &CteNames, profile: EngineProfile) -> SqloopResult<DeltaRefresher> {
        let snap = names.delta_snapshot();
        Ok(DeltaRefresher {
            clear: PreparedStatement::new(translate_sql(&format!("DELETE FROM {snap}"), profile)?),
            fill: PreparedStatement::new(translate_sql(
                &format!("INSERT INTO {snap} SELECT * FROM {}", names.table),
                profile,
            )?),
            table: names.table.clone(),
            snap,
        })
    }

    /// Rewrites the snapshot from the live CTE table/view. When the
    /// snapshot does not exist yet (fresh run before the first refresh),
    /// falls back to creating it.
    ///
    /// # Errors
    /// Engine errors.
    pub fn refresh(&mut self, conn: &mut dyn Connection) -> SqloopResult<()> {
        match self.clear.execute(conn, &[]) {
            Ok(_) => {
                self.fill.execute(conn, &[])?;
                Ok(())
            }
            Err(DbError::NotFound(_)) => {
                run(
                    conn,
                    &format!("CREATE TABLE {} AS SELECT * FROM {}", self.snap, self.table),
                )?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }
}

/// The termination probe, prepared once at plan time: the user's data/delta
/// expression query (and the `COUNT(*)` companion that `ALL` mode needs)
/// become [`PreparedStatement`] handles executed every round instead of
/// being re-translated and re-parsed.
#[derive(Debug)]
pub struct TerminationProbe {
    tc: Termination,
    query: Option<PreparedStatement>,
    count: Option<PreparedStatement>,
}

impl TerminationProbe {
    /// Builds the probe for `tc` over the CTE table `cte_table`.
    ///
    /// # Errors
    /// Translation errors.
    pub fn new(
        cte_table: &str,
        tc: &Termination,
        profile: EngineProfile,
    ) -> SqloopResult<TerminationProbe> {
        let (query, count) = match tc {
            Termination::Data { query, mode } | Termination::Delta { query, mode } => {
                let q = PreparedStatement::new(translate_query_to_sql(query, profile));
                let c = match mode {
                    DataMode::All => Some(PreparedStatement::new(translate_sql(
                        &format!("SELECT COUNT(*) FROM {cte_table}"),
                        profile,
                    )?)),
                    _ => None,
                };
                (Some(q), c)
            }
            _ => (None, None),
        };
        Ok(TerminationProbe {
            tc: tc.clone(),
            query,
            count,
        })
    }

    /// Decides termination after one iteration — same contract as
    /// [`termination_satisfied`], but data/delta conditions run through the
    /// prepared handles.
    ///
    /// # Errors
    /// Engine errors from data/delta expression evaluation.
    pub fn satisfied(
        &mut self,
        conn: &mut dyn Connection,
        iterations_done: u64,
        last_updates: u64,
    ) -> SqloopResult<bool> {
        match &self.tc {
            Termination::Iterations(n) => Ok(iterations_done >= *n),
            Termination::Updates(n) => Ok(last_updates <= *n),
            Termination::Data { mode, .. } | Termination::Delta { mode, .. } => {
                let stmt = self
                    .query
                    .as_mut()
                    .expect("probe built with a data/delta query");
                let result = match stmt.execute(conn, &[])? {
                    StmtOutput::Rows(r) => r,
                    other => {
                        return Err(SqloopError::Semantic(format!(
                            "termination expression did not return rows: {other:?}"
                        )))
                    }
                };
                match mode {
                    DataMode::Any => Ok(!result.rows.is_empty()),
                    DataMode::All => {
                        let count = self.count.as_mut().expect("ALL mode prepares a count");
                        let total = match count.execute(conn, &[])? {
                            StmtOutput::Rows(r) => r.scalar().and_then(Value::as_i64).unwrap_or(0),
                            _ => 0,
                        };
                        Ok(result.rows.len() as i64 == total)
                    }
                    DataMode::Compare(cmp, threshold) => {
                        let scalar = result.scalar().ok_or_else(|| {
                            SqloopError::Semantic(
                                "termination expression with a comparison must return one value"
                                    .into(),
                            )
                        })?;
                        Ok(cmp.matches(scalar.total_cmp(threshold)))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcp::{Driver, LocalDriver};
    use sqldb::parser::parse_query;
    use sqldb::{Database, EngineProfile};

    fn conn() -> Box<dyn Connection> {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
            .unwrap();
        s.execute("INSERT INTO edges VALUES (1,2,1.0),(2,3,0.5),(2,1,0.5)")
            .unwrap();
        LocalDriver::new(db).connect().unwrap()
    }

    #[test]
    fn names() {
        let n = CteNames::new("pr");
        assert_eq!(n.tmp(), "pr__tmp");
        assert_eq!(n.working(0), "pr__w0");
        assert_eq!(n.working(3), "pr__w1");
        assert_eq!(n.delta_snapshot(), "prdelta");
        assert_eq!(n.partition(7), "pr__pt7");
        assert_eq!(n.message(3, 9), "pr__msg_3_9");
    }

    #[test]
    fn create_cte_table_infers_and_promotes() {
        let mut c = conn();
        let seed = parse_query(
            "SELECT src, 0, 0.15 FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src",
        )
        .unwrap();
        let cols = vec!["node".to_string(), "rank".to_string(), "delta".to_string()];
        let schema = create_cte_table(c.as_mut(), "pr", &cols, &seed, true, true).unwrap();
        assert_eq!(schema.columns, cols);
        assert_eq!(schema.types[0], DataType::Int);
        assert_eq!(schema.types[1], DataType::Float, "int literal promoted");
        let r = c.query("SELECT COUNT(*) FROM pr").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        // fractional updates now succeed
        c.execute("UPDATE pr SET rank = 0.5 WHERE node = 1")
            .unwrap();
    }

    #[test]
    fn create_cte_table_arity_mismatch() {
        let mut c = conn();
        let seed = parse_query("SELECT src FROM edges").unwrap();
        let cols = vec!["a".to_string(), "b".to_string()];
        assert!(matches!(
            create_cte_table(c.as_mut(), "x", &cols, &seed, false, true),
            Err(SqloopError::Semantic(_))
        ));
    }

    #[test]
    fn rewrite_table_refs_adds_alias() {
        let q = parse_query("SELECT fib.n FROM fib WHERE n < 10").unwrap();
        let r = rewrite_table_refs(&q, "fib", "fib__w0");
        let sql = translate_query_to_sql(&r, EngineProfile::Postgres);
        assert!(sql.contains("\"fib__w0\" AS \"fib\""), "{sql}");
        // aliased references untouched
        let q = parse_query("SELECT s.n FROM fib AS s").unwrap();
        let r = rewrite_table_refs(&q, "fib", "fib__w1");
        let sql = translate_query_to_sql(&r, EngineProfile::Postgres);
        assert!(sql.contains("\"fib__w1\" AS \"s\""), "{sql}");
    }

    #[test]
    fn rewrite_reaches_derived_tables() {
        let q = parse_query("SELECT x.a FROM (SELECT a FROM r) AS x").unwrap();
        let r = rewrite_table_refs(&q, "r", "r2");
        let sql = translate_query_to_sql(&r, EngineProfile::Postgres);
        assert!(sql.contains("\"r2\""), "{sql}");
    }

    #[test]
    fn data_condition_modes() {
        let mut c = conn();
        c.execute("CREATE TABLE r (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        c.execute("INSERT INTO r VALUES (1, 1.0), (2, 5.0)")
            .unwrap();
        let q = parse_query("SELECT id FROM r WHERE v > 2").unwrap();
        // ANY: one row satisfies
        assert!(data_condition_satisfied(c.as_mut(), "r", &q, &DataMode::Any).unwrap());
        // ALL: not all rows satisfy
        assert!(!data_condition_satisfied(c.as_mut(), "r", &q, &DataMode::All).unwrap());
        // compare: COUNT = 1
        let qc = parse_query("SELECT COUNT(*) FROM r WHERE v > 2").unwrap();
        let mode = DataMode::Compare(crate::grammar::TcCompare::Equal, Value::Int(1));
        assert!(data_condition_satisfied(c.as_mut(), "r", &qc, &mode).unwrap());
        let mode = DataMode::Compare(crate::grammar::TcCompare::Greater, Value::Int(5));
        assert!(!data_condition_satisfied(c.as_mut(), "r", &qc, &mode).unwrap());
    }

    #[test]
    fn termination_metadata_forms() {
        let mut c = conn();
        assert!(
            termination_satisfied(c.as_mut(), "r", &Termination::Iterations(3), 3, 99).unwrap()
        );
        assert!(
            !termination_satisfied(c.as_mut(), "r", &Termination::Iterations(3), 2, 0).unwrap()
        );
        assert!(termination_satisfied(c.as_mut(), "r", &Termination::Updates(0), 1, 0).unwrap());
        assert!(!termination_satisfied(c.as_mut(), "r", &Termination::Updates(0), 1, 5).unwrap());
        assert!(termination_satisfied(c.as_mut(), "r", &Termination::Updates(10), 1, 7).unwrap());
    }

    #[test]
    fn delta_refresher_creates_then_rewrites_in_place() {
        let mut c = conn();
        c.execute("CREATE TABLE r (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        c.execute("INSERT INTO r VALUES (1, 1.0)").unwrap();
        let names = CteNames::new("r");
        let mut refresher = DeltaRefresher::new(&names, c.profile()).unwrap();
        // first refresh creates the snapshot
        refresher.refresh(c.as_mut()).unwrap();
        let r = c.query("SELECT v FROM rdelta").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(1.0));
        // later refreshes rewrite it without DDL
        c.execute("UPDATE r SET v = 2.0").unwrap();
        refresher.refresh(c.as_mut()).unwrap();
        let r = c.query("SELECT v FROM rdelta").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(2.0));
    }

    #[test]
    fn termination_probe_matches_unprepared_evaluation() {
        let mut c = conn();
        c.execute("CREATE TABLE r (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        c.execute("INSERT INTO r VALUES (1, 1.0), (2, 5.0)")
            .unwrap();
        let q = parse_query("SELECT id FROM r WHERE v > 2").unwrap();
        let profile = c.profile();
        for (mode, expect) in [
            (DataMode::Any, true),
            (DataMode::All, false),
            (
                DataMode::Compare(crate::grammar::TcCompare::Greater, Value::Int(5)),
                false,
            ),
        ] {
            let tc = Termination::Data {
                query: q.clone(),
                mode: mode.clone(),
            };
            let mut probe = TerminationProbe::new("r", &tc, profile).unwrap();
            // twice: the second call runs the already-prepared handles
            for _ in 0..2 {
                assert_eq!(
                    probe.satisfied(c.as_mut(), 1, 1).unwrap(),
                    expect,
                    "{mode:?}"
                );
            }
        }
        let mut probe = TerminationProbe::new("r", &Termination::Iterations(3), profile).unwrap();
        assert!(probe.satisfied(c.as_mut(), 3, 9).unwrap());
        assert!(!probe.satisfied(c.as_mut(), 2, 0).unwrap());
    }

    #[test]
    fn delta_snapshot_refresh() {
        let mut c = conn();
        c.execute("CREATE TABLE r (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        c.execute("INSERT INTO r VALUES (1, 1.0)").unwrap();
        let names = CteNames::new("r");
        refresh_delta_snapshot(c.as_mut(), &names).unwrap();
        c.execute("UPDATE r SET v = 2.0").unwrap();
        let r = c
            .query("SELECT r.v, rdelta.v FROM r JOIN rdelta ON r.id = rdelta.id")
            .unwrap();
        assert_eq!(r.rows[0], vec![Value::Float(2.0), Value::Float(1.0)]);
        // refresh again replaces the snapshot
        refresh_delta_snapshot(c.as_mut(), &names).unwrap();
        let r = c.query("SELECT v FROM rdelta").unwrap();
        assert_eq!(r.rows[0][0], Value::Float(2.0));
    }
}
