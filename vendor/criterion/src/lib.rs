//! Offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface this workspace's benches use
//! (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `black_box`,
//! `criterion_group!` / `criterion_main!`). Each benchmark is timed with a
//! fixed number of wall-clock samples and the mean per-iteration time is
//! printed; there is no statistical analysis, plots, or CLI parsing.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A name/parameter pair, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Uses the parameter alone as the label.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    per_iter: Duration,
    iters_timed: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then time `samples` batches.
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.per_iter = total / (iters.max(1) as u32);
        self.iters_timed = iters;
    }
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        per_iter: Duration::ZERO,
        iters_timed: 0,
    };
    f(&mut b);
    println!(
        "bench {label:<48} {:>12.3?}/iter  ({} samples)",
        b.per_iter, b.iters_timed
    );
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benches a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.samples, |b| f(b));
    }

    /// Benches a closure receiving `input` by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.samples, |b| f(b, input));
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Accepts CLI configuration (ignored by this stand-in).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Benches a standalone closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.samples, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("sum_small", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(42u64), &42u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs() {
        benches();
    }
}
