//! Tracing and metrics integration tests: traced runs must agree with the
//! [`sqloop::ExecutionReport`] counters they ride along with, identical
//! seeded runs must produce identical traces, injected faults must show up
//! as trace events, and the JSON export must parse and tally.

use dbcp::{with_chaos, ChaosConfig, Driver, FaultWeights, LocalDriver};
use obs::{EventKind, SpanKind, SpanOutcome, TraceData};
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, Strategy, TraceConfig};
use std::sync::Arc;
use std::time::Duration;

/// A fresh database loaded with `graph`, wrapped in a [`LocalDriver`].
fn loaded_driver(graph: &graphgen::Graph) -> Arc<dyn Driver> {
    let db = Database::new(EngineProfile::Postgres);
    let driver: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    driver
}

fn traced(mode: ExecutionMode) -> SqloopConfig {
    let mut config = SqloopConfig {
        mode,
        threads: 3,
        partitions: 8,
        trace: TraceConfig::on(),
        ..SqloopConfig::default()
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}"));
    }
    config
}

/// Span tuples that must be stable across identical runs (timestamps and
/// worker assignment are not).
fn span_fingerprint(data: &TraceData) -> Vec<(SpanKind, Option<u64>, u64, SpanOutcome)> {
    data.spans
        .iter()
        .map(|s| (s.kind, s.iteration, s.rows, s.outcome))
        .collect()
}

#[test]
fn trace_disabled_is_absent_from_the_report() {
    let graph = graphgen::web_graph(30, 3, 2);
    let report = SQLoop::new(loaded_driver(&graph))
        .with_config(SqloopConfig {
            mode: ExecutionMode::Sync,
            threads: 2,
            partitions: 4,
            trace: TraceConfig::default(),
            ..SqloopConfig::default()
        })
        .execute_detailed(&workloads::queries::pagerank(4))
        .unwrap();
    assert!(report.trace.is_none());
    assert!(report.trace_data.is_none());
    // the per-run metric and engine deltas are captured regardless
    assert!(report.engine_stats.unwrap().statements > 0);
}

#[test]
fn parallel_trace_spans_match_report_counters() {
    let graph = graphgen::web_graph(50, 3, 3);
    let report = SQLoop::new(loaded_driver(&graph))
        .with_config(traced(ExecutionMode::Sync))
        .execute_detailed(&workloads::queries::pagerank(6))
        .unwrap();
    assert!(matches!(
        report.strategy,
        Strategy::IterativeParallel { .. }
    ));
    let data = report.trace_data.as_ref().expect("trace enabled");
    let ok = |kind: SpanKind| {
        data.spans
            .iter()
            .filter(|s| s.kind == kind && s.outcome == SpanOutcome::Ok)
            .count() as u64
    };
    assert_eq!(ok(SpanKind::Compute), report.computes);
    assert_eq!(ok(SpanKind::Gather), report.gathers);
    let summary = report.trace.as_ref().expect("summary present");
    assert_eq!(summary.compute_spans, report.computes);
    assert_eq!(summary.gather_spans, report.gathers);
    let rounds = data
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Round)
        .count() as u64;
    assert_eq!(rounds, report.iterations);
    // every span sits inside the run and carries a worker + partition
    for s in &data.spans {
        assert!(s.end_us >= s.start_us);
        assert!(s.worker.is_some() && s.partition.is_some());
    }
}

#[test]
fn single_threaded_trace_records_one_span_per_iteration() {
    let graph = graphgen::web_graph(30, 3, 2);
    let report = SQLoop::new(loaded_driver(&graph))
        .with_config(traced(ExecutionMode::Single))
        .execute_detailed(&workloads::queries::pagerank(5))
        .unwrap();
    let data = report.trace_data.as_ref().expect("trace enabled");
    let iterations: Vec<_> = data
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Iteration)
        .collect();
    assert_eq!(iterations.len() as u64, report.iterations);
    for (i, s) in iterations.iter().enumerate() {
        assert_eq!(s.iteration, Some(i as u64 + 1));
        assert_eq!(s.outcome, SpanOutcome::Ok);
    }
}

#[test]
fn identical_seeded_single_runs_trace_identically() {
    let run = || {
        let graph = graphgen::web_graph(40, 3, 9);
        SQLoop::new(loaded_driver(&graph))
            .with_config(traced(ExecutionMode::Single))
            .execute_detailed(&workloads::queries::pagerank(6))
            .unwrap()
    };
    let (a, b) = (run(), run());
    let ta = a.trace_data.as_ref().expect("trace enabled");
    let tb = b.trace_data.as_ref().expect("trace enabled");
    assert_eq!(span_fingerprint(ta), span_fingerprint(tb));
    let events = |d: &TraceData| {
        d.events
            .iter()
            .map(|e| (e.kind, e.detail.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(events(ta), events(tb));
}

#[test]
fn chaos_faults_surface_as_trace_events_matching_recovery_counters() {
    // statement errors only: every injected fault is a task failure the
    // scheduler replays, so trace events must tally with RecoveryCounters
    let graph = graphgen::web_graph(50, 3, 3);
    let db = Database::new(EngineProfile::Postgres);
    let clean: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
    let mut conn = clean.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &graph).unwrap();
    let (driver, stats) = with_chaos(
        clean,
        ChaosConfig {
            skip_connections: 1,
            weights: FaultWeights {
                connect_refused: 0,
                stmt_error: 1,
                latency: 0,
                drop: 0,
                ..FaultWeights::default()
            },
            ..ChaosConfig::seeded(17, 0.10)
        },
    );
    let mut config = traced(ExecutionMode::Sync);
    config.task_retries = 6;
    config.retry_backoff = Duration::ZERO;
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(8))
        .unwrap();
    assert!(stats.stmt_errors() > 0, "storm must inject faults");
    assert!(report.recovery.task_retries > 0);
    let data = report.trace_data.as_ref().expect("trace enabled");
    let count = |kind: EventKind| data.events.iter().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(count(EventKind::Retry), report.recovery.task_retries);
    assert_eq!(
        count(EventKind::Reconnect),
        report.recovery.worker_reconnects
    );
    assert_eq!(count(EventKind::Fault), report.recovery.task_failures);
    let summary = report.trace.as_ref().unwrap();
    assert_eq!(summary.retry_events, report.recovery.task_retries);
    assert_eq!(summary.reconnect_events, report.recovery.worker_reconnects);
    // failed attempts leave failed spans; the ok tally still matches
    assert_eq!(summary.failed_spans as u64, report.recovery.task_failures);
    assert_eq!(summary.compute_spans, report.computes);
    assert_eq!(summary.gather_spans, report.gathers);
}

#[test]
fn json_export_parses_and_tallies_with_the_report() {
    let graph = graphgen::web_graph(50, 3, 3);
    let path = std::env::temp_dir().join(format!("sqloop_trace_test_{}.json", std::process::id()));
    let mut config = traced(ExecutionMode::Sync);
    config.trace = TraceConfig::json(&path);
    let report = SQLoop::new(loaded_driver(&graph))
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(6))
        .unwrap();
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let (spans, events) = obs::validate_trace_json(&text).expect("valid trace JSON");
    assert_eq!(
        spans.get("compute:ok").copied().unwrap_or(0),
        report.computes
    );
    assert_eq!(spans.get("gather:ok").copied().unwrap_or(0), report.gathers);
    assert_eq!(events.get("round").copied().unwrap_or(0), report.iterations);
    // the embedded metrics block must round-trip through the parser too
    let json = obs::json::parse(&text).unwrap();
    let counters = json.get("metrics").and_then(|m| m.get("counters"));
    assert!(counters.is_some(), "metrics.counters missing");
}

#[test]
fn downgrade_is_recorded_as_a_trace_event() {
    let graph = graphgen::web_graph(30, 3, 2);
    let db = Database::new(EngineProfile::Postgres);
    let clean: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
    let mut conn = clean.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &graph).unwrap();
    let (driver, _) = with_chaos(
        clean,
        ChaosConfig {
            skip_connections: 1,
            match_substring: Some("__msgslot_".into()),
            weights: FaultWeights {
                connect_refused: 0,
                stmt_error: 1,
                latency: 0,
                drop: 0,
                ..FaultWeights::default()
            },
            ..ChaosConfig::seeded(1, 1.0)
        },
    );
    let mut config = traced(ExecutionMode::Sync);
    config.task_retries = 2;
    config.retry_backoff = Duration::ZERO;
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::pagerank(4))
        .unwrap();
    assert!(report.recovery.downgraded);
    let summary = report.trace.as_ref().expect("trace enabled");
    assert_eq!(summary.downgrade_events, 1);
    let data = report.trace_data.as_ref().unwrap();
    // downgraded runs finish on the single-threaded executor, so the trace
    // holds both the failed parallel attempt and the iteration spans
    assert!(data
        .spans
        .iter()
        .any(|s| s.kind == SpanKind::Iteration && s.outcome == SpanOutcome::Ok));
}

/// Extracts `N` from the first `actual rows=N` annotation on a plan line.
fn actual_rows(line: &str) -> Option<u64> {
    let tail = line.split("actual rows=").nth(1)?;
    tail.split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

#[test]
fn explain_analyze_root_actuals_match_cardinality_in_all_profiles() {
    // the statement shapes of the fig4 loops: aggregation over edges, a
    // self-join (message exchange), and a sorted/limited read-out
    let queries = [
        "SELECT src, COUNT(*) FROM edges GROUP BY src ORDER BY src",
        "SELECT a.src, b.dst FROM edges AS a JOIN edges AS b ON a.dst = b.src",
        "SELECT src, dst FROM edges ORDER BY src LIMIT 7",
    ];
    let graph = graphgen::web_graph(40, 3, 2);
    for profile in sqldb::EngineProfile::ALL {
        let db = Database::new(profile);
        let driver: Arc<dyn Driver> = Arc::new(LocalDriver::new(db));
        let mut conn = driver.connect().unwrap();
        workloads::load_edges(conn.as_mut(), &graph).unwrap();
        for q in queries {
            let result = match conn.execute(q).unwrap() {
                sqldb::StmtOutput::Rows(r) => r,
                other => panic!("{profile:?}: expected rows, got {other:?}"),
            };
            let plan = match conn.execute(&format!("EXPLAIN ANALYZE {q}")).unwrap() {
                sqldb::StmtOutput::Rows(r) => r,
                other => panic!("{profile:?}: expected plan rows, got {other:?}"),
            };
            let lines: Vec<String> = plan.rows.iter().map(|r| r[0].to_string()).collect();
            // oracle: the root operator's actual cardinality is the query's
            // result cardinality, and the Execution footer agrees
            let root = actual_rows(&lines[0])
                .unwrap_or_else(|| panic!("{profile:?}: no actuals on root of {lines:?}"));
            assert_eq!(
                root,
                result.rows.len() as u64,
                "{profile:?} {q}: root actual rows vs cardinality ({lines:?})"
            );
            let footer = lines.last().unwrap();
            assert!(
                footer.starts_with(&format!("Execution: rows={}", result.rows.len())),
                "{profile:?} {q}: bad footer {footer:?}"
            );
            // every annotated operator carries monotone, parseable actuals
            assert!(
                lines
                    .iter()
                    .filter(|l| l.contains("actual rows="))
                    .all(|l| actual_rows(l).is_some()),
                "{profile:?} {q}: unparseable actuals in {lines:?}"
            );
        }
    }
}

#[test]
fn profiled_loop_emits_op_metrics_and_a_valid_prometheus_dump() {
    let graph = graphgen::web_graph(40, 3, 2);
    let db = Database::new(EngineProfile::Postgres);
    db.set_profiling(true);
    let driver: Arc<dyn Driver> = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &graph).unwrap();
    drop(conn);
    let report = SQLoop::new(driver)
        .with_config(traced(ExecutionMode::Sync))
        .execute_detailed(&workloads::queries::pagerank(4))
        .unwrap();
    // with profiling on, per-operator actuals flow into the registry
    let op_rows: u64 = report
        .metrics
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("sqldb.op.") && name.ends_with(".rows_out"))
        .map(|(_, v)| *v)
        .sum();
    assert!(op_rows > 0, "operator counters absent: {:?}", {
        report.metrics.counters.keys().collect::<Vec<_>>()
    });
    // the live scrape of the same engine parses and has no duplicate series
    let dump = dbcp::prometheus_dump(&db);
    obs::validate_prometheus_text(&dump).expect("scrape must parse");
    assert!(
        dump.contains("sqldb_digest_calls_total{digest="),
        "digest series missing from scrape"
    );
}

#[test]
fn plan_cache_round_attribution_is_tagged_with_the_mode() {
    let graph = graphgen::web_graph(40, 3, 2);
    for (mode, label) in [
        (ExecutionMode::Single, "Single"),
        (ExecutionMode::Sync, "Sync"),
        (ExecutionMode::Async, "Async"),
        (ExecutionMode::AsyncPrio, "AsyncP"),
    ] {
        let report = SQLoop::new(loaded_driver(&graph))
            .with_config(traced(mode))
            .execute_detailed(&workloads::queries::pagerank(4))
            .unwrap();
        let data = report.trace_data.as_ref().expect("trace enabled");
        let ticks: Vec<_> = data
            .events
            .iter()
            .filter(|e| e.kind == EventKind::PlanCache)
            .collect();
        assert!(!ticks.is_empty(), "{label}: no plan-cache round events");
        for t in &ticks {
            assert!(
                t.detail.starts_with(&format!("mode={label} ")),
                "{label}: bad tag {:?}",
                t.detail
            );
            assert!(t.detail.contains(" hits=") && t.detail.contains(" misses="));
            assert!(t.iteration.is_some(), "{label}: tick without a round");
        }
        // the per-run digest report carries the same mode and, in the
        // parallel modes, names the message-table families the cache
        // misses on — the ROADMAP read-off
        let digests = report.digests.as_ref().expect("local driver sees digests");
        assert_eq!(digests.mode, label);
        assert!(!digests.families.is_empty(), "{label}: no digest families");
        if mode != ExecutionMode::Single {
            assert!(
                digests
                    .top_misses
                    .iter()
                    .any(|e| e.digest.contains("__msgslot_n_n")),
                "{label}: message-table misses unattributed: {:?}",
                digests
                    .top_misses
                    .iter()
                    .map(|e| &e.digest)
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn digest_stats_survive_a_checkpoint_resume_cycle() {
    use sqloop::CheckpointConfig;
    // chain diameter 24 → SSSP needs ~25 rounds; cap at 6 for the "crash"
    let graph = graphgen::chain(24);
    let dir = std::env::temp_dir().join(format!("sqloop-digest-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let db = Database::new(EngineProfile::Postgres);
    let driver: Arc<dyn Driver> = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &graph).unwrap();
    drop(conn);
    db.reset_digests();

    let mut config = SqloopConfig {
        mode: ExecutionMode::Single,
        checkpoint: Some(CheckpointConfig::new(&dir).every(1)),
        ..SqloopConfig::default()
    };
    config.max_iterations = 6;
    let err = SQLoop::new(driver.clone())
        .with_config(config.clone())
        .execute(&workloads::queries::sssp_all(0))
        .unwrap_err();
    assert!(format!("{err}").contains("iteration"), "unexpected: {err}");
    let calls_after_crash: u64 = db.digest_stats().iter().map(|e| e.calls).sum();
    assert!(calls_after_crash > 0, "crashed run recorded no digests");

    // resume against the same engine: the digest table keeps accumulating
    // and the resumed run still gets a per-run attribution report
    config.max_iterations = 10_000;
    config.resume_from = Some(dir.clone());
    let report = SQLoop::new(driver)
        .with_config(config)
        .execute_detailed(&workloads::queries::sssp_all(0))
        .unwrap();
    assert_eq!(report.result.rows.len(), graph.node_count() as usize);
    let calls_after_resume: u64 = db.digest_stats().iter().map(|e| e.calls).sum();
    assert!(
        calls_after_resume > calls_after_crash,
        "resume must extend the digest table ({calls_after_resume} <= {calls_after_crash})"
    );
    let digests = report.digests.as_ref().expect("digest report on resume");
    assert_eq!(digests.mode, "Single");
    assert!(!digests.families.is_empty());
    // the scrape endpoint sees the merged history
    let dump = dbcp::prometheus_dump(&db);
    obs::validate_prometheus_text(&dump).expect("scrape must parse after resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn per_run_metrics_capture_pool_and_statement_activity() {
    let graph = graphgen::web_graph(40, 3, 2);
    let report = SQLoop::new(loaded_driver(&graph))
        .with_config(traced(ExecutionMode::Sync))
        .execute_detailed(&workloads::queries::pagerank(4))
        .unwrap();
    // local drivers do not go through the pool, but they do hit the engine:
    // statement-kind histograms must show this run's updates and selects
    let h = |name: &str| {
        report
            .metrics
            .histograms
            .get(name)
            .map(|h| h.count)
            .unwrap_or(0)
    };
    assert!(h("sqldb.stmt.update") > 0, "updates were executed");
    assert!(h("sqldb.stmt.select") > 0, "selects were executed");
    let engine = report.engine_stats.expect("local driver sees the engine");
    assert!(engine.statements > 0);
    assert!(engine.rows_scanned > 0);
}
