//! PageRank on a power-law web graph (the paper's Example 2 workload),
//! executed with all three parallel schedulers and checked against the
//! native oracle.
//!
//! Run with: `cargo run --release --example pagerank [-- <scale>]`

use dbcp::{Driver, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.2);
    let dataset = graphgen::datasets::google_web_like(scale);
    println!("dataset: {} ({})", dataset.name, dataset.graph);

    let db = Database::new(EngineProfile::Postgres);
    let driver = LocalDriver::new(db);
    let mut conn = driver.connect()?;
    workloads::load_edges(conn.as_mut(), &dataset.graph)?;
    drop(conn);

    let iterations = 30;
    let query = workloads::queries::pagerank(iterations);
    let oracle = workloads::oracle::pagerank(&dataset.graph, iterations);
    let oracle_total: f64 = oracle.values().sum();

    for mode in [
        ExecutionMode::Sync,
        ExecutionMode::Async,
        ExecutionMode::AsyncPrio,
    ] {
        let config = SqloopConfig {
            mode,
            threads: 4,
            partitions: 32,
            priority: Some(PrioritySpec::highest("SELECT SUM(delta) FROM {}")),
            sample_interval: Some(Duration::from_millis(250)),
            progress_query: Some("SELECT SUM(rank) FROM {}".into()),
            ..SqloopConfig::default()
        };
        let sqloop = SQLoop::new(Arc::new(driver.clone())).with_config(config);
        let report = sqloop.execute_detailed(&query)?;
        let total: f64 = report
            .result
            .rows
            .iter()
            .map(|r| r[1].as_f64().unwrap_or(0.0))
            .sum();
        println!(
            "{:<7} {:>8.2?}  iterations={:<4} computes={:<5} gathers={:<5} \
             sum(rank)={:.3} (oracle {:.3})",
            mode.label(),
            report.elapsed,
            report.iterations,
            report.computes,
            report.gathers,
            total,
            oracle_total,
        );
        if !report.samples.is_empty() {
            let line: Vec<String> = report
                .samples
                .iter()
                .map(|s| format!("{:.1}s:{:.1}", s.elapsed.as_secs_f64(), s.value))
                .collect();
            println!("        convergence: {}", line.join(" → "));
        }
    }
    Ok(())
}
