//! # workloads — the SQLoop evaluation workloads
//!
//! The three queries of the paper's evaluation (§VI-A) — PageRank, single
//! source shortest path, and the descendant query — plus extension
//! workloads, native in-memory oracles for correctness checks, graph
//! loading, and the hand-written SQL-script baseline of §VI-D.
//!
//! ```
//! use dbcp::{Driver, LocalDriver};
//! use sqldb::{Database, EngineProfile};
//! use sqloop::SQLoop;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), sqloop::SqloopError> {
//! let db = Database::new(EngineProfile::Postgres);
//! let driver = LocalDriver::new(db);
//! let mut conn = driver.connect()?;
//! workloads::load_edges(conn.as_mut(), &graphgen::chain(10))?;
//!
//! let sqloop = SQLoop::new(Arc::new(driver));
//! let out = sqloop.execute(&workloads::queries::sssp(0, 9))?;
//! assert_eq!(out.rows[0][0], sqldb::Value::Float(9.0)); // unit weights on a chain
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod load;
pub mod oracle;
pub mod queries;
pub mod script;

pub use load::load_edges;
pub use script::{
    descendant_script, pagerank_script, run_script, ScriptBaseline, ScriptMode, ScriptRunResult,
};
