//! End-to-end tests of the parallel execution engine against the
//! single-threaded reference semantics.

use dbcp::LocalDriver;
use graphgen::web_graph;
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, Strategy};
use std::sync::Arc;

/// Loads a small deterministic power-law graph into a fresh database.
fn db_with_graph(profile: EngineProfile, nodes: usize) -> Database {
    let graph = web_graph(nodes, 3, 7);
    let db = Database::new(profile);
    let mut s = db.connect();
    s.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    let weighted = graph.weighted_edges();
    for chunk in weighted.chunks(256) {
        let values = chunk
            .iter()
            .map(|(s, d, w)| format!("({s}, {d}, {w})"))
            .collect::<Vec<_>>()
            .join(", ");
        s.execute(&format!("INSERT INTO edges VALUES {values}"))
            .unwrap();
    }
    db
}

fn sqloop_for(db: &Database, mode: ExecutionMode, threads: usize, partitions: usize) -> SQLoop {
    let mut config = SqloopConfig {
        mode,
        threads,
        partitions,
        ..SqloopConfig::default()
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::highest("SELECT SUM(delta) FROM {}"));
    }
    SQLoop::new(Arc::new(LocalDriver::new(db.clone()))).with_config(config)
}

const PAGERANK: &str = "\
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL 10 ITERATIONS)
SELECT Node, Rank FROM PageRank ORDER BY Node";

const SSSP: &str = "\
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, Infinity, CASE WHEN src = 0 THEN 0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges GROUP BY src
  ITERATE
  SELECT sssp.Node, LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Delta + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta < Neighbor.Distance OR sssp.Delta < sssp.Distance
  GROUP BY sssp.Node
  UNTIL 0 UPDATES)
SELECT Node, Distance FROM sssp ORDER BY Node";

fn ranks(result: &sqldb::QueryResult) -> Vec<(i64, f64)> {
    result
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_f64().unwrap()))
        .collect()
}

#[test]
fn sync_parallel_pagerank_matches_single_threaded() {
    let db = db_with_graph(EngineProfile::Postgres, 60);
    let single = sqloop_for(&db, ExecutionMode::Single, 1, 1)
        .execute_detailed(PAGERANK)
        .unwrap();
    let sync = sqloop_for(&db, ExecutionMode::Sync, 3, 8)
        .execute_detailed(PAGERANK)
        .unwrap();
    assert!(matches!(
        sync.strategy,
        Strategy::IterativeParallel {
            mode: ExecutionMode::Sync
        }
    ));
    assert_eq!(sync.iterations, 10);
    let a = ranks(&single.result);
    let b = ranks(&sync.result);
    assert_eq!(a.len(), b.len());
    for ((n1, r1), (n2, r2)) in a.iter().zip(&b) {
        assert_eq!(n1, n2);
        assert!((r1 - r2).abs() < 1e-9, "node {n1}: single={r1} sync={r2}");
    }
}

#[test]
fn async_pagerank_converges_to_the_same_total() {
    // at equal iteration counts async propagates *at least* as much rank
    // mass as the synchronous semantics (it consumes intermediate results),
    // so both are compared against the converged fixpoint: for a closed
    // graph the delta-PR total converges to the node count
    let db = db_with_graph(EngineProfile::Postgres, 60);
    let query = PAGERANK.replace("UNTIL 10 ITERATIONS", "UNTIL 80 ITERATIONS");
    let single = sqloop_for(&db, ExecutionMode::Single, 1, 1)
        .execute(&query)
        .unwrap();
    let asn = sqloop_for(&db, ExecutionMode::Async, 3, 8)
        .execute(&query)
        .unwrap();
    let total =
        |r: &sqldb::QueryResult| -> f64 { r.rows.iter().map(|row| row[1].as_f64().unwrap()).sum() };
    let t1 = total(&single);
    let t2 = total(&asn);
    let n = single.rows.len() as f64;
    assert!(
        (t1 - n).abs() / n < 0.01,
        "single not converged: {t1} vs {n}"
    );
    // async leaves the final gathered (not yet applied) deltas in flight
    // when the per-partition iteration cap hits, so its tolerance is looser
    assert!(
        (t2 - n).abs() / n < 0.02,
        "async not converged: {t2} vs {n}"
    );
    assert!(t2 <= n + 1e-6, "async overshot the rank mass: {t2} > {n}");
}

#[test]
fn sssp_identical_across_all_modes_and_engines() {
    for profile in EngineProfile::ALL {
        let db = db_with_graph(profile, 40);
        let reference = sqloop_for(&db, ExecutionMode::Single, 1, 1)
            .execute(SSSP)
            .unwrap();
        for mode in [
            ExecutionMode::Sync,
            ExecutionMode::Async,
            ExecutionMode::AsyncPrio,
        ] {
            let mut sq = sqloop_for(&db, mode, 2, 6);
            if mode == ExecutionMode::AsyncPrio {
                sq.config_mut().priority = Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}"));
            }
            let out = sq.execute(SSSP).unwrap();
            assert_eq!(
                reference.rows, out.rows,
                "{profile} / {mode}: distances differ from reference"
            );
        }
    }
}

#[test]
fn non_parallelizable_query_falls_back_with_reason() {
    let db = db_with_graph(EngineProfile::Postgres, 20);
    // no aggregate in the step → single-threaded fallback
    let sql = "\
WITH ITERATIVE r(node, v) AS (
  SELECT src, 1.0 FROM edges GROUP BY src
  ITERATE
  SELECT r.node, r.v * 0.5 FROM r GROUP BY r.node, r.v
  UNTIL 3 ITERATIONS)
SELECT COUNT(*) FROM r";
    let report = sqloop_for(&db, ExecutionMode::Async, 2, 4)
        .execute_detailed(sql)
        .unwrap();
    match report.strategy {
        Strategy::IterativeSingle { fallback_reason } => {
            assert!(fallback_reason.is_some());
        }
        other => panic!("expected single-threaded fallback, got {other:?}"),
    }
    assert_eq!(report.iterations, 3);
}

#[test]
fn scratch_objects_are_cleaned_up() {
    let db = db_with_graph(EngineProfile::Postgres, 30);
    sqloop_for(&db, ExecutionMode::Sync, 2, 4)
        .execute(PAGERANK)
        .unwrap();
    let leftovers: Vec<String> = db
        .table_names()
        .into_iter()
        .filter(|t| t != "edges")
        .collect();
    assert!(leftovers.is_empty(), "leftover tables: {leftovers:?}");
}

#[test]
fn count_aggregate_parallel_matches_single() {
    // one round of in-degree counting: checks the paper's §V-D correction —
    // Gather must SUM the partial counts arriving from different partitions
    // rather than COUNT the incoming messages. A single iteration is used
    // because COUNT over the full join is not delta-consistent across
    // rounds (DESIGN.md §8).
    let sql = "\
WITH ITERATIVE reach(node, total, delta) AS (
  SELECT src, 0.0, 1.0
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src
  ITERATE
  SELECT reach.node, reach.total + reach.delta, COALESCE(COUNT(s.node), 0.0)
  FROM reach
  LEFT JOIN edges AS e ON reach.node = e.dst
  LEFT JOIN reach AS s ON s.node = e.src
  GROUP BY reach.node
  UNTIL 1 ITERATIONS)
SELECT node, delta FROM reach ORDER BY node";
    let db = db_with_graph(EngineProfile::Postgres, 30);
    let single = sqloop_for(&db, ExecutionMode::Single, 1, 1)
        .execute(sql)
        .unwrap();
    let sync = sqloop_for(&db, ExecutionMode::Sync, 2, 4)
        .execute(sql)
        .unwrap();
    assert_eq!(single.rows.len(), sync.rows.len());
    for (a, b) in single.rows.iter().zip(&sync.rows) {
        assert_eq!(a[0], b[0]);
        let (x, y) = (a[1].as_f64().unwrap(), b[1].as_f64().unwrap());
        assert!((x - y).abs() < 1e-9, "node {:?}: {x} vs {y}", a[0]);
    }
}

#[test]
fn parallel_run_reports_task_counts() {
    let db = db_with_graph(EngineProfile::Postgres, 40);
    let report = sqloop_for(&db, ExecutionMode::Sync, 2, 4)
        .execute_detailed(PAGERANK)
        .unwrap();
    // 10 rounds × 4 partitions computes
    assert_eq!(report.computes, 40);
    assert!(report.gathers > 0);
    assert!(report.messages > 0);
}

#[test]
fn mysql_profile_runs_parallel_pagerank() {
    let db = db_with_graph(EngineProfile::MySql, 40);
    let single = sqloop_for(&db, ExecutionMode::Single, 1, 1)
        .execute(PAGERANK)
        .unwrap();
    let sync = sqloop_for(&db, ExecutionMode::Sync, 2, 4)
        .execute(PAGERANK)
        .unwrap();
    let a = ranks(&single);
    let b = ranks(&sync);
    for ((n1, r1), (n2, r2)) in a.iter().zip(&b) {
        assert_eq!(n1, n2);
        assert!((r1 - r2).abs() < 1e-9);
    }
}

#[test]
fn plain_sql_passthrough_via_api() {
    let db = db_with_graph(EngineProfile::MariaDb, 20);
    let sq = sqloop_for(&db, ExecutionMode::Async, 2, 4);
    let report = sq.execute_detailed("SELECT COUNT(*) FROM edges").unwrap();
    assert_eq!(report.strategy, Strategy::Passthrough);
    assert!(report.result.rows[0][0].as_i64().unwrap() > 0);
}
