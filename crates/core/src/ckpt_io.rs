//! Checkpoint storage virtualization and fault injection (DESIGN.md §15).
//!
//! Every byte the checkpoint pipeline moves — snapshot files, the manifest,
//! rotation deletes — goes through the small [`CkptIo`] VFS so the *same*
//! write→rename→sync sequence can run against the real filesystem
//! ([`RealFs`], with full fsync discipline: file contents **and** the
//! parent directory after every rename) or against the deterministic fault
//! injector [`TornFs`].
//!
//! `TornFs` models the storage failure modes a power cut or flaky disk
//! actually produces, FoundationDB-style — enumerated, not hoped away:
//!
//! * **crash before/after any operation** — all data that was written but
//!   never `sync_file`d, and every rename that was never `sync_dir`d, is
//!   dropped (a rename whose *source* was never synced durably lands as a
//!   zero-length file, the classic ext4 foot-gun);
//! * **torn write** — a write is truncated at byte *k* and the process
//!   dies;
//! * **bit flip** — one bit of a written payload is flipped and the write
//!   otherwise succeeds (latent media corruption, surfacing only at read);
//! * **failed rename** — the rename returns an I/O error without taking
//!   effect;
//! * **duplicated rename** — the rename behaves like a copy, leaving the
//!   source in place (seen on crash-recovered journaling filesystems).
//!
//! `TornFs` maintains an explicit model of *durable* state next to the real
//! scratch directory; [`TornFs::crash`] rewrites the directory to exactly
//! the durable contents, so recovery code can then be exercised against the
//! precise post-power-cut image with plain filesystem reads.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The checkpoint pipeline's view of storage: just enough surface to write
/// a file atomically (tmp + rename) with explicit durability points.
///
/// Implementations must be usable from multiple threads (the parallel
/// schedulers checkpoint from the scheduler thread while workers run).
pub trait CkptIo: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    /// Underlying I/O errors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Reads a whole file as UTF-8.
    ///
    /// # Errors
    /// Underlying I/O errors (including invalid UTF-8).
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Creates/truncates `path` and writes `contents` (no durability
    /// implied — follow with [`CkptIo::sync_file`]).
    ///
    /// # Errors
    /// Underlying I/O errors.
    fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()>;
    /// Forces `path`'s contents to stable storage.
    ///
    /// # Errors
    /// Underlying I/O errors.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically replaces `to` with `from` (no durability implied —
    /// follow with [`CkptIo::sync_dir`] on the parent).
    ///
    /// # Errors
    /// Underlying I/O errors.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Forces `dir`'s entries (renames, creates, deletes) to stable
    /// storage.
    ///
    /// # Errors
    /// Underlying I/O errors.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Deletes a file.
    ///
    /// # Errors
    /// Underlying I/O errors.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of `dir`'s entries, sorted ascending.
    ///
    /// # Errors
    /// Underlying I/O errors.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// True when `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`CkptIo`]: `std::fs` with full fsync discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl CkptIo for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        std::fs::write(path, contents)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // a directory opens like a file on unix; platforms where it does
        // not (or where directory fsync is meaningless) get a best-effort
        // no-op rather than a hard failure
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all().or(Ok(())),
            Err(_) => Ok(()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// One injected storage fault. Operations are numbered from 1 in the order
/// [`TornFs`] executes mutating calls (`write_file`, `sync_file`, `rename`,
/// `sync_dir`, `remove_file`); `op` pins the fault to one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// Power cut immediately before mutating operation `op` runs: all
    /// un-synced writes and un-`sync_dir`ed renames are lost.
    Crash {
        /// 1-based mutating-operation index.
        op: u64,
    },
    /// The write at `op` persists only its first `keep` bytes, then the
    /// process dies as in [`StorageFault::Crash`].
    TornWrite {
        /// 1-based mutating-operation index (must be a `write_file`).
        op: u64,
        /// Bytes of the payload that reach stable storage.
        keep: usize,
    },
    /// One bit of the payload written at `op` is flipped; the write (and
    /// the rest of the run) otherwise succeeds.
    BitFlip {
        /// 1-based mutating-operation index (must be a `write_file`).
        op: u64,
        /// Bit offset, taken modulo the payload length.
        bit: u64,
    },
    /// The rename at `op` fails with an I/O error and has no effect.
    FailRename {
        /// 1-based mutating-operation index (must be a `rename`).
        op: u64,
    },
    /// The rename at `op` behaves like a copy: the destination appears but
    /// the source remains.
    DuplicateRename {
        /// 1-based mutating-operation index (must be a `rename`).
        op: u64,
    },
}

impl StorageFault {
    /// The 1-based mutating-operation index this fault is armed for.
    pub fn op(&self) -> u64 {
        match self {
            StorageFault::Crash { op }
            | StorageFault::TornWrite { op, .. }
            | StorageFault::BitFlip { op, .. }
            | StorageFault::FailRename { op }
            | StorageFault::DuplicateRename { op } => *op,
        }
    }
}

#[derive(Debug)]
struct TornState {
    /// Mutating operations executed so far.
    ops: u64,
    fault: Option<StorageFault>,
    /// What stable storage holds right now: path → contents. Writes enter
    /// on `sync_file`; renames move entries on `sync_dir`.
    durable: BTreeMap<PathBuf, Vec<u8>>,
    /// Renames performed but not yet made durable by a `sync_dir`:
    /// `(from, to, duplicated)`.
    pending_renames: Vec<(PathBuf, PathBuf, bool)>,
    crashed: bool,
}

/// Deterministic storage-fault injector over one real scratch directory.
///
/// All mutating operations act on the real directory *and* update an
/// explicit durable model; [`TornFs::crash`] (triggered by the configured
/// [`StorageFault`], or called directly) rewrites the directory to exactly
/// the durable state — the post-power-cut image.
#[derive(Debug)]
pub struct TornFs {
    root: PathBuf,
    state: Mutex<TornState>,
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected storage fault: {what}"))
}

impl TornFs {
    /// Wraps `root` (which must exist). Files already present are
    /// considered durable — they survive any injected crash.
    pub fn new(root: impl Into<PathBuf>, fault: Option<StorageFault>) -> TornFs {
        let root = root.into();
        let mut durable = BTreeMap::new();
        if let Ok(entries) = std::fs::read_dir(&root) {
            for entry in entries.filter_map(Result::ok) {
                let path = entry.path();
                if let Ok(bytes) = std::fs::read(&path) {
                    durable.insert(path, bytes);
                }
            }
        }
        TornFs {
            root,
            state: Mutex::new(TornState {
                ops: 0,
                fault,
                durable,
                pending_renames: Vec::new(),
                crashed: false,
            }),
        }
    }

    /// Mutating operations executed so far (use a fault-free dry run to
    /// enumerate the crash matrix).
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// True once a crash fault has fired (or [`TornFs::crash`] was called).
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Simulates the power cut now: the scratch directory is rewritten to
    /// exactly the durable state and every later operation on this `TornFs`
    /// fails.
    pub fn crash(&self) {
        let mut state = self.state.lock().unwrap();
        Self::crash_locked(&self.root, &mut state);
    }

    fn crash_locked(root: &Path, state: &mut TornState) {
        state.crashed = true;
        state.pending_renames.clear();
        if let Ok(entries) = std::fs::read_dir(root) {
            for entry in entries.filter_map(Result::ok) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        for (path, bytes) in &state.durable {
            let _ = std::fs::write(path, bytes);
        }
    }

    /// Advances the op counter; fires a pending [`StorageFault::Crash`].
    /// Returns the 1-based index of the current operation.
    fn begin_op(&self, state: &mut TornState) -> io::Result<u64> {
        if state.crashed {
            return Err(injected("filesystem crashed"));
        }
        state.ops += 1;
        let op = state.ops;
        if let Some(StorageFault::Crash { op: at }) = state.fault {
            if op == at {
                Self::crash_locked(&self.root, state);
                return Err(injected("power cut"));
            }
        }
        Ok(op)
    }
}

impl CkptIo for TornFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // directory creation happens once, before the write sequence under
        // test — not a numbered crash point
        std::fs::create_dir_all(dir)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        if self.state.lock().unwrap().crashed {
            return Err(injected("filesystem crashed"));
        }
        std::fs::read_to_string(path)
    }

    fn write_file(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let op = self.begin_op(&mut state)?;
        match state.fault {
            Some(StorageFault::TornWrite { op: at, keep }) if op == at => {
                // the torn prefix did reach the platters before the cut
                let torn = &contents[..keep.min(contents.len())];
                state.durable.insert(path.to_path_buf(), torn.to_vec());
                Self::crash_locked(&self.root, &mut state);
                Err(injected("torn write"))
            }
            Some(StorageFault::BitFlip { op: at, bit }) if op == at && !contents.is_empty() => {
                let mut flipped = contents.to_vec();
                let bit = (bit % (flipped.len() as u64 * 8)) as usize;
                flipped[bit / 8] ^= 1 << (bit % 8);
                std::fs::write(path, &flipped)
            }
            _ => std::fs::write(path, contents),
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        self.begin_op(&mut state)?;
        let bytes = std::fs::read(path)?;
        state.durable.insert(path.to_path_buf(), bytes);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        let op = self.begin_op(&mut state)?;
        match state.fault {
            Some(StorageFault::FailRename { op: at }) if op == at => Err(injected("rename failed")),
            Some(StorageFault::DuplicateRename { op: at }) if op == at => {
                std::fs::copy(from, to)?;
                state
                    .pending_renames
                    .push((from.to_path_buf(), to.to_path_buf(), true));
                Ok(())
            }
            _ => {
                std::fs::rename(from, to)?;
                state
                    .pending_renames
                    .push((from.to_path_buf(), to.to_path_buf(), false));
                Ok(())
            }
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        self.begin_op(&mut state)?;
        let applied: Vec<_> = state
            .pending_renames
            .iter()
            .filter(|(from, ..)| from.parent() == Some(dir))
            .cloned()
            .collect();
        state
            .pending_renames
            .retain(|(from, ..)| from.parent() != Some(dir));
        for (from, to, duplicated) in applied {
            // a rename whose source was never file-synced lands durably as
            // a zero-length file — exactly the ext4 rename-without-fsync
            // failure mode
            let content = if duplicated {
                state.durable.get(&from).cloned().unwrap_or_default()
            } else {
                state.durable.remove(&from).unwrap_or_default()
            };
            state.durable.insert(to, content);
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.state.lock().unwrap();
        self.begin_op(&mut state)?;
        state.durable.remove(path);
        state
            .pending_renames
            .retain(|(from, to, _)| from != path && to != path);
        std::fs::remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        if self.state.lock().unwrap().crashed {
            return Err(injected("filesystem crashed"));
        }
        RealFs.list_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqloop_tornfs_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The canonical atomic-write sequence against a TornFs.
    fn atomic_write(io: &dyn CkptIo, path: &Path, contents: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        io.write_file(&tmp, contents)?;
        io.sync_file(&tmp)?;
        io.rename(&tmp, path)?;
        io.sync_dir(path.parent().unwrap())
    }

    #[test]
    fn unsynced_data_is_lost_on_crash() {
        let dir = scratch("unsynced");
        let fs = TornFs::new(&dir, None);
        fs.write_file(&dir.join("a"), b"hello").unwrap();
        // no sync_file: the write sits in the page cache only
        fs.crash();
        assert!(!dir.join("a").exists(), "un-synced write must vanish");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synced_file_survives_but_unsynced_rename_is_zero_length() {
        let dir = scratch("rename");
        let fs = TornFs::new(&dir, None);
        // synced file survives a crash
        fs.write_file(&dir.join("keep"), b"durable").unwrap();
        fs.sync_file(&dir.join("keep")).unwrap();
        // renamed but never dir-synced: present in the live view...
        fs.write_file(&dir.join("b.tmp"), b"payload").unwrap();
        fs.rename(&dir.join("b.tmp"), &dir.join("b")).unwrap();
        assert!(dir.join("b").exists());
        fs.crash();
        assert_eq!(std::fs::read(dir.join("keep")).unwrap(), b"durable");
        assert!(!dir.join("b").exists(), "un-dir-synced rename must vanish");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_of_unsynced_source_lands_as_zero_length_file() {
        let dir = scratch("zero");
        let fs = TornFs::new(&dir, None);
        fs.write_file(&dir.join("c.tmp"), b"payload").unwrap();
        // rename + dir sync, but the *file* itself was never synced
        fs.rename(&dir.join("c.tmp"), &dir.join("c")).unwrap();
        fs.sync_dir(&dir).unwrap();
        fs.crash();
        assert_eq!(
            std::fs::read(dir.join("c")).unwrap(),
            b"",
            "entry is durable, data blocks are not"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_sync_discipline_survives_any_crash() {
        let dir = scratch("full");
        let fs = TornFs::new(&dir, None);
        atomic_write(&fs, &dir.join("d"), b"all the way down").unwrap();
        fs.crash();
        assert_eq!(std::fs::read(dir.join("d")).unwrap(), b"all the way down");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_fault_fires_at_the_configured_op_and_preexisting_files_survive() {
        let dir = scratch("at-op");
        std::fs::write(dir.join("old"), b"previous generation").unwrap();
        // ops: 1 write, 2 sync_file, 3 rename, 4 sync_dir → cut before 3
        let fs = TornFs::new(&dir, Some(StorageFault::Crash { op: 3 }));
        let err = atomic_write(&fs, &dir.join("e"), b"doomed").unwrap_err();
        assert!(err.to_string().contains("power cut"), "{err}");
        assert!(fs.crashed());
        assert!(!dir.join("e").exists());
        assert_eq!(
            std::fs::read(dir.join("old")).unwrap(),
            b"previous generation"
        );
        // the filesystem stays dead after the cut
        assert!(fs.write_file(&dir.join("f"), b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let dir = scratch("torn");
        let fs = TornFs::new(&dir, Some(StorageFault::TornWrite { op: 1, keep: 4 }));
        let err = fs.write_file(&dir.join("g"), b"0123456789").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert_eq!(std::fs::read(dir.join("g")).unwrap(), b"0123");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let dir = scratch("flip");
        let fs = TornFs::new(&dir, Some(StorageFault::BitFlip { op: 1, bit: 9 }));
        atomic_write(&fs, &dir.join("h"), &[0x00, 0x00]).unwrap();
        assert_eq!(std::fs::read(dir.join("h")).unwrap(), vec![0x00, 0x02]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_and_duplicated_renames() {
        let dir = scratch("renames");
        let fs = TornFs::new(&dir, Some(StorageFault::FailRename { op: 3 }));
        let err = atomic_write(&fs, &dir.join("i"), b"x").unwrap_err();
        assert!(err.to_string().contains("rename failed"), "{err}");
        assert!(dir.join("i.tmp").exists() && !dir.join("i").exists());

        let dir2 = scratch("renames2");
        let fs = TornFs::new(&dir2, Some(StorageFault::DuplicateRename { op: 3 }));
        atomic_write(&fs, &dir2.join("j"), b"x").unwrap();
        assert!(
            dir2.join("j.tmp").exists() && dir2.join("j").exists(),
            "duplicated rename leaves both names"
        );
        fs.crash();
        assert_eq!(std::fs::read(dir2.join("j")).unwrap(), b"x");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }
}
