//! Bounded retry with exponential backoff for transient connectivity
//! failures.

use crate::cancel::CancelToken;
use sqldb::{DbError, DbResult};
use std::time::Duration;

/// True for errors worth retrying: connectivity failures, transactional
/// congestion and load shedding that a fresh (backed-off) attempt can
/// clear. Deterministic statement errors (parse, semantic, missing
/// objects) and exhausted budgets are not retried — the same statement
/// against the same limits fails identically.
pub fn is_transient(e: &DbError) -> bool {
    matches!(
        e,
        DbError::Connection(_)
            | DbError::LockTimeout(_)
            | DbError::TxnAborted(_)
            | DbError::Overloaded(_)
    )
}

/// A bounded-attempt retry policy with exponential backoff and
/// deterministic jitter.
///
/// Attempt *n* (0-based) sleeps `base_delay * 2^n` before running, capped
/// at [`RetryPolicy::max_delay`], with up to 25% seeded jitter so callers
/// retrying in lockstep spread out reproducibly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff.
    pub max_delay: Duration,
    /// Seed for the jitter stream; same seed → same delays.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts and `base_delay` backoff.
    pub fn new(max_attempts: u32, base_delay: Duration) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay,
            ..RetryPolicy::default()
        }
    }

    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy::new(1, Duration::ZERO)
    }

    /// The backoff to sleep before (0-based) retry `attempt`.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        if exp.is_zero() {
            return exp;
        }
        // deterministic jitter in [0, 25%) of the exponential delay
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let jitter = exp.mul_f64((z % 1000) as f64 / 4000.0);
        exp + jitter
    }

    /// Runs `op` until it succeeds, fails non-transiently, or the attempt
    /// budget is exhausted. The closure receives the 0-based attempt index.
    ///
    /// # Errors
    /// The last error when every attempt fails, or the first non-transient
    /// error.
    pub fn run<T>(&self, op: impl FnMut(u32) -> DbResult<T>) -> DbResult<T> {
        self.run_with_cancel(&CancelToken::new(), op)
    }

    /// Like [`RetryPolicy::run`], but every backoff sleep is interruptible:
    /// when `cancel` fires mid-wait the pending error is returned
    /// immediately instead of finishing the sleep and burning further
    /// attempts. An already-cancelled token still allows the *first*
    /// attempt (callers decide what to do with a cancelled run; this only
    /// stops the policy from waiting on its behalf).
    ///
    /// # Errors
    /// The last error when every attempt fails, the first non-transient
    /// error, or the pending transient error when cancelled mid-backoff.
    pub fn run_with_cancel<T>(
        &self,
        cancel: &CancelToken,
        mut op: impl FnMut(u32) -> DbResult<T>,
    ) -> DbResult<T> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt + 1 < self.max_attempts => {
                    if cancel.cancelled() {
                        return Err(e);
                    }
                    let delay = self.delay_for(attempt);
                    let reg = obs::global();
                    reg.counter("dbcp.retry.backoff_waits").inc();
                    reg.histogram("dbcp.retry.backoff_wait").observe(delay);
                    if !cancel.sleep(delay) {
                        return Err(e);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(is_transient(&DbError::Connection("gone".into())));
        assert!(is_transient(&DbError::LockTimeout("busy".into())));
        assert!(is_transient(&DbError::TxnAborted("deadlock".into())));
        assert!(is_transient(&DbError::Overloaded("shedding".into())));
        assert!(!is_transient(&DbError::Parse("bad".into())));
        assert!(!is_transient(&DbError::NotFound("t".into())));
        assert!(!is_transient(&DbError::Invalid("dup key".into())));
        assert!(!is_transient(&DbError::BudgetExceeded("mem".into())));
        assert!(!is_transient(&DbError::Timeout("deadline".into())));
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy::new(4, Duration::ZERO);
        let mut calls = 0;
        let out = policy.run(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(DbError::Connection("flaky".into()))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
    }

    #[test]
    fn gives_up_after_budget() {
        let policy = RetryPolicy::new(3, Duration::ZERO);
        let mut calls = 0;
        let out: DbResult<()> = policy.run(|_| {
            calls += 1;
            Err(DbError::Connection("still down".into()))
        });
        assert!(matches!(out, Err(DbError::Connection(_))));
        assert_eq!(calls, 3);
    }

    #[test]
    fn non_transient_fails_fast() {
        let policy = RetryPolicy::new(5, Duration::ZERO);
        let mut calls = 0;
        let out: DbResult<()> = policy.run(|_| {
            calls += 1;
            Err(DbError::Parse("syntax".into()))
        });
        assert!(matches!(out, Err(DbError::Parse(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn cancelled_token_interrupts_backoff() {
        use std::time::Instant;
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_secs(5),
            max_delay: Duration::from_secs(60),
            jitter_seed: 0,
        };
        let cancel = CancelToken::new();
        let canceller = cancel.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            canceller.cancel();
        });
        let started = Instant::now();
        let mut calls = 0;
        let out: DbResult<()> = policy.run_with_cancel(&cancel, |_| {
            calls += 1;
            Err(DbError::Connection("down".into()))
        });
        h.join().unwrap();
        assert!(matches!(out, Err(DbError::Connection(_))));
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "a 5s backoff must be cut short by cancellation"
        );
        assert!(calls <= 2, "no further attempts after cancellation");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(50),
            jitter_seed: 7,
        };
        assert!(p.delay_for(0) >= Duration::from_millis(10));
        assert!(p.delay_for(1) >= Duration::from_millis(20));
        // capped at max_delay + 25% jitter
        assert!(p.delay_for(6) <= Duration::from_millis(63));
        // deterministic per seed
        assert_eq!(p.delay_for(3), p.delay_for(3));
    }
}
