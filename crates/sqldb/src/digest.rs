//! `pg_stat_statements`-style statement digests and a slow-statement log.
//!
//! A *digest* is SQL text normalized into a statement family: literals
//! become `?`, digit runs inside identifiers become `N`, case and
//! whitespace are canonicalized. That second rule is what makes the
//! SQLoop schedulers legible — the parallel modes mint round-unique
//! message tables (`pr__msg_3_17`), so raw-text grouping would show
//! thousands of one-off statements where there are really only a handful
//! of families. `pr__msg_3_17` and `pr__msg_4_2` both normalize to
//! `pr__msg_n_n`, and the digest table can then attribute plan-cache
//! misses to the family, not the instance (ROADMAP Open item 1).
//!
//! Collection is bounded: at most [`DIGEST_CAPACITY`] families are
//! tracked, evicting the family with the fewest calls when full, and the
//! slow log is a fixed ring. Both sit behind a relaxed atomic enabled
//! check so the disabled cost is one load per statement.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Maximum number of distinct statement families tracked per database.
pub const DIGEST_CAPACITY: usize = 512;

/// Maximum entries retained by the slow-statement ring.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// Normalizes SQL text into its statement-family digest.
///
/// Rules: string and numeric literals become `?`; digit runs inside
/// identifiers become `n` (folding round-unique table names into one
/// family); everything outside string literals is lowercased; whitespace
/// collapses to single spaces.
///
/// # Examples
/// ```
/// assert_eq!(
///     sqldb::normalize_sql("INSERT INTO pr__msg_3_17 SELECT * FROM e WHERE w > 0.5"),
///     "insert into pr__msg_n_n select * from e where w > ?"
/// );
/// ```
pub fn normalize_sql(sql: &str) -> String {
    let b = sql.as_bytes();
    let mut out = String::with_capacity(sql.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if !out.is_empty() && i < b.len() {
                out.push(' ');
            }
        } else if c == b'\'' {
            // string literal with '' escaping
            i += 1;
            while i < b.len() {
                if b[i] == b'\'' {
                    if b.get(i + 1) == Some(&b'\'') {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
            out.push('?');
        } else if c.is_ascii_digit() {
            // numeric literal (we are not inside an identifier: that
            // branch consumes its own digits below)
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                i += 1;
            }
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            out.push('?');
        } else if c.is_ascii_alphabetic() || c == b'_' {
            // identifier or keyword: lowercase, digit runs fold to `n`
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                if b[i].is_ascii_digit() {
                    out.push('n');
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                } else {
                    out.push(b[i].to_ascii_lowercase() as char);
                    i += 1;
                }
            }
        } else {
            out.push(c as char);
            i += 1;
        }
    }
    out
}

/// Aggregated execution statistics for one statement family.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DigestEntry {
    /// The normalized statement text ([`normalize_sql`]).
    pub digest: String,
    /// Executions observed (successful or failed).
    pub calls: u64,
    /// Executions that returned an error.
    pub errors: u64,
    /// Total execution time across calls, microseconds.
    pub total_us: u64,
    /// Slowest single call, microseconds.
    pub max_us: u64,
    /// Rows returned (queries) or affected (DML) across calls.
    pub rows: u64,
    /// Executions served by a cached plan.
    pub plan_hits: u64,
    /// Executions that required a fresh parse of a cacheable statement.
    pub plan_misses: u64,
    /// One raw SQL text from this family (first observed).
    pub sample: String,
}

impl DigestEntry {
    /// Mean execution time in microseconds (0 when no calls).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.calls).unwrap_or(0)
    }
}

/// Bounded digest table: statement family → [`DigestEntry`].
#[derive(Debug, Default)]
pub struct DigestStats {
    entries: Mutex<HashMap<String, DigestEntry>>,
    enabled: AtomicBool,
}

impl DigestStats {
    /// Creates an enabled, empty table.
    pub fn new() -> DigestStats {
        let d = DigestStats::default();
        d.enabled.store(true, Ordering::Relaxed);
        d
    }

    /// The cheap per-statement gate: one relaxed load.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off (existing entries are kept).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Records one execution of `sql`. `plan_hit` is `Some(true)` for a
    /// plan-cache hit, `Some(false)` for a fresh parse of a cacheable
    /// statement, `None` for uncacheable statements. `digest` may be
    /// precomputed (prepared statements) to skip re-normalization.
    pub fn record(
        &self,
        digest: Option<&str>,
        sql: &str,
        elapsed_us: u64,
        rows: u64,
        error: bool,
        plan_hit: Option<bool>,
    ) {
        if !self.enabled() {
            return;
        }
        let owned;
        let digest = match digest {
            Some(d) => d,
            None => {
                owned = normalize_sql(sql);
                &owned
            }
        };
        let mut entries = self.entries.lock();
        if !entries.contains_key(digest) && entries.len() >= DIGEST_CAPACITY {
            // evict the family with the fewest calls (ties: first found)
            if let Some(victim) = entries
                .iter()
                .min_by_key(|(_, e)| e.calls)
                .map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
            }
        }
        let e = entries.entry(digest.to_owned()).or_insert_with(|| {
            let mut sample = sql.to_owned();
            // cap samples so a pathological statement can't bloat reports
            if sample.len() > 512 {
                sample.truncate(512);
            }
            DigestEntry {
                digest: digest.to_owned(),
                sample,
                ..DigestEntry::default()
            }
        });
        e.calls += 1;
        e.errors += u64::from(error);
        e.total_us += elapsed_us;
        e.max_us = e.max_us.max(elapsed_us);
        e.rows += rows;
        match plan_hit {
            Some(true) => e.plan_hits += 1,
            Some(false) => e.plan_misses += 1,
            None => {}
        }
    }

    /// All entries, sorted by total time descending (digest text breaks
    /// ties), so reports are deterministic.
    pub fn snapshot(&self) -> Vec<DigestEntry> {
        let mut v: Vec<DigestEntry> = self.entries.lock().values().cloned().collect();
        v.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.digest.cmp(&b.digest))
        });
        v
    }

    /// Entries sorted by plan-cache misses descending — the miss
    /// attribution view: which families are being re-parsed.
    pub fn top_misses(&self, k: usize) -> Vec<DigestEntry> {
        let mut v: Vec<DigestEntry> = self.entries.lock().values().cloned().collect();
        v.sort_by(|a, b| {
            b.plan_misses
                .cmp(&a.plan_misses)
                .then_with(|| a.digest.cmp(&b.digest))
        });
        v.truncate(k);
        v
    }

    /// Drops every entry.
    pub fn reset(&self) {
        self.entries.lock().clear();
    }
}

/// One retained slow-statement record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowStatement {
    /// Monotonic sequence number of this record (gaps = sampled out).
    pub seq: u64,
    /// The raw SQL text (capped at 512 bytes).
    pub sql: String,
    /// Execution time in microseconds.
    pub elapsed_us: u64,
    /// Rows returned or affected.
    pub rows: u64,
}

/// Threshold + sampling slow-statement ring buffer.
///
/// Off by default (`threshold_us == 0`). With `sample_every == n`, every
/// n-th statement over the threshold is retained — sampling keeps a hot
/// loop that suddenly crosses the threshold from flooding the ring.
#[derive(Debug, Default)]
pub struct SlowLog {
    threshold_us: AtomicU64,
    sample_every: AtomicU64,
    over_threshold: AtomicU64,
    ring: Mutex<VecDeque<SlowStatement>>,
}

impl SlowLog {
    /// Sets the threshold (0 disables) and sampling rate (clamped to ≥ 1).
    pub fn configure(&self, threshold_us: u64, sample_every: u64) {
        self.threshold_us.store(threshold_us, Ordering::Relaxed);
        self.sample_every
            .store(sample_every.max(1), Ordering::Relaxed);
    }

    /// Current `(threshold_us, sample_every)`.
    pub fn config(&self) -> (u64, u64) {
        (
            self.threshold_us.load(Ordering::Relaxed),
            self.sample_every.load(Ordering::Relaxed).max(1),
        )
    }

    /// Statements that crossed the threshold (sampled or not).
    pub fn over_threshold(&self) -> u64 {
        self.over_threshold.load(Ordering::Relaxed)
    }

    /// Records a statement if it crosses the threshold and wins sampling.
    #[inline]
    pub fn record(&self, sql: &str, elapsed_us: u64, rows: u64) {
        let threshold = self.threshold_us.load(Ordering::Relaxed);
        if threshold == 0 || elapsed_us < threshold {
            return;
        }
        let n = self.over_threshold.fetch_add(1, Ordering::Relaxed);
        let every = self.sample_every.load(Ordering::Relaxed).max(1);
        if !n.is_multiple_of(every) {
            return;
        }
        let mut sql = sql.to_owned();
        if sql.len() > 512 {
            sql.truncate(512);
        }
        let mut ring = self.ring.lock();
        if ring.len() >= SLOW_LOG_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(SlowStatement {
            seq: n,
            sql,
            elapsed_us,
            rows,
        });
    }

    /// Retained records, oldest first.
    pub fn snapshot(&self) -> Vec<SlowStatement> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Drops retained records and resets the sequence counter.
    pub fn reset(&self) {
        self.ring.lock().clear();
        self.over_threshold.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_folds_literals_and_round_unique_names() {
        assert_eq!(
            normalize_sql("SELECT * FROM pr__msg_3_17 WHERE w > 0.5 AND s = 'x''y'"),
            "select * from pr__msg_n_n where w > ? and s = ?"
        );
        // two instances of the same family share a digest
        assert_eq!(
            normalize_sql("INSERT INTO pr__msg_0_1 VALUES (1, 2.5e-3)"),
            normalize_sql("INSERT  INTO\npr__msg_12_99 VALUES (7, 8.125)"),
        );
        // distinct families stay distinct
        assert_ne!(
            normalize_sql("SELECT * FROM pr__next"),
            normalize_sql("SELECT * FROM pr__msg_1_1"),
        );
    }

    #[test]
    fn normalization_edge_cases() {
        assert_eq!(normalize_sql(""), "");
        assert_eq!(normalize_sql("   "), "");
        assert_eq!(normalize_sql("SELECT 1"), "select ?");
        assert_eq!(normalize_sql("SELECT 'unterminated"), "select ?");
        assert_eq!(normalize_sql("t1x2"), "tnxn");
        // exponent without digits is not consumed as part of the number
        assert_eq!(normalize_sql("SELECT 1e FROM t"), "select ?e from t");
    }

    #[test]
    fn digest_table_aggregates_and_attributes_misses() {
        let d = DigestStats::new();
        d.record(
            None,
            "SELECT * FROM pr__msg_1_1",
            100,
            10,
            false,
            Some(false),
        );
        d.record(
            None,
            "SELECT * FROM pr__msg_2_5",
            300,
            20,
            false,
            Some(false),
        );
        d.record(None, "SELECT * FROM pr__next", 50, 5, false, Some(true));
        let snap = d.snapshot();
        assert_eq!(snap.len(), 2);
        let msg = snap
            .iter()
            .find(|e| e.digest == "select * from pr__msg_n_n")
            .unwrap();
        assert_eq!(msg.calls, 2);
        assert_eq!(msg.total_us, 400);
        assert_eq!(msg.mean_us(), 200);
        assert_eq!(msg.max_us, 300);
        assert_eq!(msg.rows, 30);
        assert_eq!(msg.plan_misses, 2);
        assert_eq!(msg.plan_hits, 0);
        assert_eq!(msg.sample, "SELECT * FROM pr__msg_1_1");
        let top = d.top_misses(1);
        assert_eq!(top[0].digest, "select * from pr__msg_n_n");
    }

    #[test]
    fn digest_table_is_bounded() {
        let d = DigestStats::new();
        // a repeat-heavy family survives the one-off flood
        for _ in 0..10 {
            d.record(None, "SELECT keepme FROM t", 1, 0, false, None);
        }
        // digit-free names: digits would fold into one `n` family
        let letters = |mut i: usize| {
            let mut s = String::new();
            loop {
                s.push((b'a' + (i % 26) as u8) as char);
                i /= 26;
                if i == 0 {
                    break s;
                }
            }
        };
        for i in 0..(DIGEST_CAPACITY * 2) {
            d.record(
                None,
                &format!("SELECT {} FROM t", letters(i)),
                1,
                0,
                false,
                None,
            );
        }
        let snap = d.snapshot();
        assert!(snap.len() <= DIGEST_CAPACITY);
        assert!(snap.iter().any(|e| e.digest.contains("keepme")));
    }

    #[test]
    fn disabled_table_records_nothing() {
        let d = DigestStats::new();
        d.set_enabled(false);
        d.record(None, "SELECT 1", 1, 0, false, None);
        assert!(d.snapshot().is_empty());
        d.set_enabled(true);
        d.record(None, "SELECT 1", 1, 0, false, None);
        assert_eq!(d.snapshot().len(), 1);
    }

    #[test]
    fn slow_log_threshold_and_sampling() {
        let log = SlowLog::default();
        // off by default
        log.record("SELECT 1", 1_000_000, 0);
        assert!(log.snapshot().is_empty());
        log.configure(1000, 2);
        for i in 0..10 {
            log.record(&format!("SELECT {i}"), 500 + i * 200, 0);
        }
        // elapsed >= 1000 for i >= 3 (500+600); 7 over threshold, every 2nd kept
        assert_eq!(log.over_threshold(), 7);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.iter().all(|s| s.elapsed_us >= 1000));
        log.reset();
        assert!(log.snapshot().is_empty());
        assert_eq!(log.over_threshold(), 0);
    }

    #[test]
    fn slow_log_ring_is_bounded() {
        let log = SlowLog::default();
        log.configure(1, 1);
        for i in 0..(SLOW_LOG_CAPACITY as u64 + 50) {
            log.record("SELECT 1", 10 + i, 0);
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), SLOW_LOG_CAPACITY);
        // oldest entries were dropped
        assert_eq!(snap[0].seq, 50);
    }
}
