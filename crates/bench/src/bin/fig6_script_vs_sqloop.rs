//! Figure 6 — "Comparison of SQL scripts and SQLoop" (paper §VI-D):
//! the hand-written multi-statement SQL script versus SQLoop's three
//! parallel methods, for PageRank and the 100-clicks descendant query.
//!
//! Usage: `cargo run --release -p sqloop-bench --bin fig6_script_vs_sqloop --
//!         [--exp pr|dq|all] [--scale f] [--threads 4] [--partitions n]`
//!
//! Expected shape (paper): SQLoop up to ~5× faster for PR, up to ~3× for
//! DQ, on every engine; also reports the productivity comparison
//! (script line count vs ~20-line iterative CTE).

use dbcp::Driver;
use sqldb::EngineProfile;
use sqloop::{ExecutionMode, PrioritySpec, SqloopConfig};
use sqloop_bench::{env_with_graph, parse_args, time_it, write_csv, Table};
use workloads::{run_script, ScriptMode};

const MODES: [ExecutionMode; 3] = [
    ExecutionMode::Sync,
    ExecutionMode::Async,
    ExecutionMode::AsyncPrio,
];

fn main() {
    let args = parse_args();
    let threads = args.threads.iter().copied().max().unwrap_or(4);
    println!("== Figure 6: SQL script vs SQLoop ({threads} threads) ==\n");

    let (cte_lines, script_lines) = workloads::script::line_count_comparison(args.iterations);
    println!(
        "productivity: iterative CTE = {cte_lines} lines; equivalent unrolled script = {script_lines} lines\n"
    );

    if args.exp == "pr" || args.exp == "all" {
        pr_comparison(&args, threads);
    }
    if args.exp == "dq" || args.exp == "all" {
        dq_comparison(&args, threads);
    }
}

fn pr_comparison(args: &sqloop_bench::BenchArgs, threads: usize) {
    let dataset = graphgen::datasets::google_web_like(args.scale);
    println!("PageRank on {} ({})", dataset.name, dataset.graph);
    let query = workloads::queries::pagerank(args.iterations);
    let mut table = Table::new(&[
        "engine",
        "SQL script (s)",
        "Sync (s)",
        "Async (s)",
        "AsyncP (s)",
        "best speedup",
    ]);
    for profile in EngineProfile::ALL {
        // baseline: the script over a single connection
        let env = env_with_graph(profile, &dataset.graph);
        let mut conn = env.driver.connect().expect("connect");
        let script = workloads::pagerank_script();
        let (_, script_time) = time_it(|| {
            run_script(
                conn.as_mut(),
                &script,
                ScriptMode::FixedIterations(args.iterations),
            )
            .expect("script run")
        });
        let mut times = Vec::new();
        for mode in MODES {
            let env = env_with_graph(profile, &dataset.graph);
            let sq = env.sqloop(SqloopConfig {
                mode,
                threads,
                partitions: args.partitions,
                priority: Some(PrioritySpec::highest("SELECT SUM(delta) FROM {}")),
                ..SqloopConfig::default()
            });
            let (_, t) = time_it(|| sq.execute(&query).expect("pr run"));
            times.push(t.as_secs_f64());
        }
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        table.row(vec![
            profile.name().into(),
            format!("{:.3}", script_time.as_secs_f64()),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
            format!("{:.3}", times[2]),
            format!("{:.2}x", script_time.as_secs_f64() / best),
        ]);
    }
    println!("{}", table.render());
    if let Some(p) = write_csv("fig6_pr", &table.to_csv()) {
        println!("  wrote {}\n", p.display());
    }
}

fn dq_comparison(args: &sqloop_bench::BenchArgs, threads: usize) {
    let dataset = graphgen::datasets::berkstan_like(args.scale);
    // the paper picks two pages 100 clicks apart
    let (target, hops) = dataset.graph.node_at_distance(0, 100).expect("deep graph");
    println!(
        "Descendant query on {} ({}); page 0 → page {target} ({hops} clicks)",
        dataset.name, dataset.graph
    );
    let query = workloads::queries::descendant_clicks(0, target);
    let mut table = Table::new(&[
        "engine",
        "SQL script (s)",
        "Sync (s)",
        "Async (s)",
        "AsyncP (s)",
        "best speedup",
    ]);
    for profile in EngineProfile::ALL {
        let env = env_with_graph(profile, &dataset.graph);
        let mut conn = env.driver.connect().expect("connect");
        let script = workloads::descendant_script(0, target);
        let (script_out, script_time) = time_it(|| {
            run_script(
                conn.as_mut(),
                &script,
                ScriptMode::UntilNoUpdates {
                    max_iterations: 10_000,
                },
            )
            .expect("script run")
        });
        let mut times = Vec::new();
        let mut answers = Vec::new();
        for mode in MODES {
            let env = env_with_graph(profile, &dataset.graph);
            let sq = env.sqloop(SqloopConfig {
                mode,
                threads,
                partitions: args.partitions,
                priority: Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}")),
                ..SqloopConfig::default()
            });
            let (out, t) = time_it(|| sq.execute(&query).expect("dq run"));
            times.push(t.as_secs_f64());
            answers.push(out.rows.first().and_then(|r| r[0].as_f64()));
        }
        // every method must agree with the script on the click count
        let script_answer = script_out.result.rows.first().and_then(|r| r[0].as_f64());
        for a in &answers {
            assert_eq!(*a, script_answer, "{profile}: click count mismatch");
        }
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        table.row(vec![
            profile.name().into(),
            format!("{:.3}", script_time.as_secs_f64()),
            format!("{:.3}", times[0]),
            format!("{:.3}", times[1]),
            format!("{:.3}", times[2]),
            format!("{:.2}x", script_time.as_secs_f64() / best),
        ]);
    }
    println!("{}", table.render());
    if let Some(p) = write_csv("fig6_dq", &table.to_csv()) {
        println!("  wrote {}\n", p.display());
    }
}
