//! Offline stand-in for the `crossbeam` crate: the `channel` module only,
//! implementing multi-producer multi-consumer unbounded channels over a
//! `Mutex<VecDeque>` + `Condvar`.

pub mod channel {
    //! MPMC unbounded channel with crossbeam's API shape.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half (clonable: receivers compete for messages).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still open.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .0
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Non-blocking receive; `None` when empty (regardless of senders).
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Blocking iterator that ends when the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// See [`Receiver::iter`].
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn iter_drains_until_close() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            h.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn competing_receivers_partition_messages() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h = std::thread::spawn(move || rx2.iter().count());
            let a = rx.iter().count();
            let b = h.join().unwrap();
            assert_eq!(a + b, 100);
        }
    }
}
