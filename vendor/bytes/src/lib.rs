//! Offline stand-in for the `bytes` crate: `Bytes`, `BytesMut` and the
//! big-endian `Buf`/`BufMut` accessors this workspace's wire protocol uses.

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Length of the unread remainder.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out a sub-range of the unread remainder.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(&self[..][range])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side accessors (big-endian, like the real crate's defaults).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies out the next `len` bytes, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Reads one byte.
    ///
    /// # Panics
    /// Panics when empty.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    /// Panics when fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    /// Panics when fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64;
    /// Reads a big-endian `i64`.
    ///
    /// # Panics
    /// Panics when fewer than 8 bytes remain.
    fn get_i64(&mut self) -> i64;
    /// Reads a big-endian `f64`.
    ///
    /// # Panics
    /// Panics when fewer than 8 bytes remain.
    fn get_f64(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past the end");
        let out = Bytes::from(&self.data[self.pos..self.pos + len]);
        self.pos += len;
        out
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past the end");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take::<4>())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take::<8>())
    }

    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take::<8>())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take::<8>())
    }
}

impl Bytes {
    fn take<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "read past the end of the buffer");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.pos..self.pos + N]);
        self.pos += N;
        out
    }
}

/// Write-side accessors (big-endian).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64);
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(1.5);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), u64::MAX - 1);
        assert_eq!(r.get_i64(), -42);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"abc");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn reading_past_the_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u32();
    }
}
