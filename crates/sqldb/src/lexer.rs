//! SQL tokenizer.
//!
//! Accepts both PostgreSQL-style (`"ident"`) and MySQL-style (`` `ident` ``)
//! quoted identifiers so the same lexer serves every engine profile, plus the
//! SQLoop keywords (`ITERATIVE`, `ITERATE`, `UNTIL`, `DELTA`, …) which are
//! just ordinary identifiers at this level.

use crate::error::{DbError, DbResult};

/// A single lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (unquoted; stored lower-cased).
    Ident(String),
    /// Quoted identifier (stored as written, lower-cased for matching).
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (escapes resolved).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||`
    Concat,
    /// `?` (positional parameter placeholder)
    Question,
}

impl Token {
    /// True when the token is the given (case-insensitive) keyword.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Identifier text if this token can serve as an identifier.
    pub fn ident_text(&self) -> Option<&str> {
        match self {
            Token::Ident(s) | Token::QuotedIdent(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenizes `input` into a vector of tokens.
///
/// Comments (`-- …` to end of line, `/* … */`) are skipped.
///
/// # Errors
/// Returns [`DbError::Parse`] on unterminated strings/comments or unexpected
/// characters.
pub fn tokenize(input: &str) -> DbResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(DbError::Parse(format!(
                            "unterminated block comment at byte {start}"
                        )));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_quoted(input, i, '\'')?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let (s, next) = lex_quoted(input, i, '"')?;
                tokens.push(Token::QuotedIdent(s.to_ascii_lowercase()));
                i = next;
            }
            '`' => {
                let (s, next) = lex_quoted(input, i, '`')?;
                tokens.push(Token::QuotedIdent(s.to_ascii_lowercase()));
                i = next;
            }
            '(' => push_sym(&mut tokens, Sym::LParen, &mut i),
            ')' => push_sym(&mut tokens, Sym::RParen, &mut i),
            ',' => push_sym(&mut tokens, Sym::Comma, &mut i),
            ';' => push_sym(&mut tokens, Sym::Semicolon, &mut i),
            '+' => push_sym(&mut tokens, Sym::Plus, &mut i),
            '-' => push_sym(&mut tokens, Sym::Minus, &mut i),
            '*' => push_sym(&mut tokens, Sym::Star, &mut i),
            '/' => push_sym(&mut tokens, Sym::Slash, &mut i),
            '%' => push_sym(&mut tokens, Sym::Percent, &mut i),
            '=' => push_sym(&mut tokens, Sym::Eq, &mut i),
            '?' => push_sym(&mut tokens, Sym::Question, &mut i),
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    return Err(DbError::Parse(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token::Symbol(Sym::LtEq));
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                }
                _ => push_sym(&mut tokens, Sym::Lt, &mut i),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::GtEq));
                    i += 2;
                } else {
                    push_sym(&mut tokens, Sym::Gt, &mut i);
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::Symbol(Sym::Concat));
                    i += 2;
                } else {
                    return Err(DbError::Parse(format!("unexpected '|' at byte {i}")));
                }
            }
            '.' => {
                // could be a float like .5 or a dot
                if bytes
                    .get(i + 1)
                    .map(|b| (*b as char).is_ascii_digit())
                    .unwrap_or(false)
                {
                    let (tok, next) = lex_number(input, i)?;
                    tokens.push(tok);
                    i = next;
                } else {
                    push_sym(&mut tokens, Sym::Dot, &mut i);
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

fn push_sym(tokens: &mut Vec<Token>, sym: Sym, i: &mut usize) {
    tokens.push(Token::Symbol(sym));
    *i += 1;
}

fn lex_quoted(input: &str, start: usize, quote: char) -> DbResult<(String, usize)> {
    let bytes = input.as_bytes();
    let q = quote as u8;
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == q {
            // doubled quote = escaped quote
            if bytes.get(i + 1) == Some(&q) {
                out.push(quote);
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // copy one UTF-8 char
            let ch = input[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(DbError::Parse(format!(
        "unterminated {quote}-quoted token at byte {start}"
    )))
}

fn lex_number(input: &str, start: usize) -> DbResult<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut is_float = false;
    while i < bytes.len() {
        match bytes[i] as char {
            c if c.is_ascii_digit() => i += 1,
            '.' if !is_float => {
                is_float = true;
                i += 1;
            }
            'e' | 'E' => {
                is_float = true;
                i += 1;
                if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Token::Float(f), i))
            .map_err(|_| DbError::Parse(format!("bad float literal '{text}'")))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((Token::Int(v), i)),
            // fall back to float for out-of-range integers
            Err(_) => text
                .parse::<f64>()
                .map(|f| (Token::Float(f), i))
                .map_err(|_| DbError::Parse(format!("bad numeric literal '{text}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        tokenize(s).unwrap()
    }

    #[test]
    fn keywords_lowercased() {
        let t = lex("SELECT Foo FROM Bar");
        assert_eq!(t[0], Token::Ident("select".into()));
        assert_eq!(t[1], Token::Ident("foo".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42"), vec![Token::Int(42)]);
        assert_eq!(lex("0.85"), vec![Token::Float(0.85)]);
        assert_eq!(lex("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(lex(".5"), vec![Token::Float(0.5)]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(lex("'it''s'"), vec![Token::Str("it's".into())]);
    }

    #[test]
    fn quoted_identifiers_both_dialects() {
        assert_eq!(lex("\"MyCol\""), vec![Token::QuotedIdent("mycol".into())]);
        assert_eq!(lex("`MyCol`"), vec![Token::QuotedIdent("mycol".into())]);
    }

    #[test]
    fn comments_skipped() {
        let t = lex("SELECT 1 -- trailing\n/* block */ + 2");
        assert_eq!(
            t,
            vec![
                Token::Ident("select".into()),
                Token::Int(1),
                Token::Symbol(Sym::Plus),
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let t = lex("a <> b != c <= d >= e");
        let syms: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec![Sym::NotEq, Sym::NotEq, Sym::LtEq, Sym::GtEq]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn concat_operator() {
        assert_eq!(lex("a || b")[1], Token::Symbol(Sym::Concat));
        assert!(tokenize("a | b").is_err());
    }
}
