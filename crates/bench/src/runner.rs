//! Benchmark environment setup and timing helpers.

use dbcp::{Driver, LocalDriver};
use graphgen::Graph;
use sqldb::{Database, EngineProfile};
use sqloop::{ProgressSample, SQLoop, SqloopConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One engine instance with the workload graph loaded as `edges`.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    /// The emulated engine.
    pub profile: EngineProfile,
    /// Shared database handle (for statistics).
    pub db: Database,
    /// Driver the middleware connects through.
    pub driver: Arc<LocalDriver>,
}

impl BenchEnv {
    /// A SQLoop instance over this environment.
    pub fn sqloop(&self, config: SqloopConfig) -> SQLoop {
        SQLoop::new(self.driver.clone() as Arc<dyn Driver>).with_config(config)
    }
}

/// Builds a fresh engine of `profile` and loads `graph` into it.
///
/// # Panics
/// Panics on load errors (benchmarks want loud failures).
pub fn env_with_graph(profile: EngineProfile, graph: &Graph) -> BenchEnv {
    let db = Database::new(profile);
    let driver = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().expect("local connect");
    workloads::load_edges(conn.as_mut(), graph).expect("load edges");
    BenchEnv {
        profile,
        db,
        driver,
    }
}

/// Times a closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// The paper's PR convergence time: the first moment the sampled progress
/// metric reaches `fraction` (e.g. 0.99) of its final value (§VI-A).
/// Returns `None` when there are no samples.
pub fn convergence_time(samples: &[ProgressSample], fraction: f64) -> Option<Duration> {
    let last = samples.last()?.value;
    if last == 0.0 {
        return samples.first().map(|s| s.elapsed);
    }
    samples
        .iter()
        .find(|s| s.value >= last * fraction)
        .map(|s| s.elapsed)
}

/// Minimal CLI arguments shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Dataset scale factor (1.0 ≈ 50k-edge graphs).
    pub scale: f64,
    /// Which sub-experiment (`pr`, `sssp`, `dq`, `all`).
    pub exp: String,
    /// Partition count (paper default 256; benches default smaller).
    pub partitions: usize,
    /// Override iteration counts where applicable.
    pub iterations: u64,
    /// Thread counts to sweep (fig5) — parsed from `--threads 1,2,4`.
    pub threads: Vec<usize>,
}

impl Default for BenchArgs {
    fn default() -> BenchArgs {
        BenchArgs {
            scale: 0.4,
            exp: "all".into(),
            partitions: 128,
            iterations: 20,
            threads: vec![1, 2, 4, 8],
        }
    }
}

/// Parses `--scale`, `--exp`, `--partitions`, `--iterations`, `--threads`.
///
/// # Panics
/// Panics on malformed values (benchmarks want loud failures).
pub fn parse_args() -> BenchArgs {
    let mut out = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => out.scale = value().parse().expect("bad --scale"),
            "--exp" => out.exp = value(),
            "--partitions" => out.partitions = value().parse().expect("bad --partitions"),
            "--iterations" => out.iterations = value().parse().expect("bad --iterations"),
            "--threads" => {
                out.threads = value()
                    .split(',')
                    .map(|t| t.trim().parse().expect("bad --threads"))
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_for_every_profile() {
        let g = graphgen::chain(20);
        for p in EngineProfile::ALL {
            let env = env_with_graph(p, &g);
            assert_eq!(env.profile, p);
            let mut c = env.driver.connect().unwrap();
            let n = c.query("SELECT COUNT(*) FROM edges").unwrap();
            assert_eq!(n.rows[0][0], sqldb::Value::Int(19));
        }
    }

    #[test]
    fn convergence_time_extraction() {
        let mk = |ms: u64, v: f64| ProgressSample {
            elapsed: Duration::from_millis(ms),
            value: v,
            mem_bytes: None,
        };
        let samples = vec![mk(10, 10.0), mk(20, 50.0), mk(30, 99.5), mk(40, 100.0)];
        assert_eq!(
            convergence_time(&samples, 0.99),
            Some(Duration::from_millis(30))
        );
        assert_eq!(
            convergence_time(&samples, 0.2),
            Some(Duration::from_millis(20))
        );
        assert_eq!(convergence_time(&[], 0.99), None);
    }

    #[test]
    fn time_it_measures() {
        let (v, d) = time_it(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(5));
    }
}
