//! Property tests for the table snapshot format (checkpoint substrate):
//! any table round-trips bit-exactly through `encode`/`decode` and through
//! `export_table`/`import_table` across databases — including NaN payloads,
//! signed zero, ±infinity, extreme integers, subnormals, empty / unicode /
//! escape-heavy strings, and NULLs in every column type.

use proptest::prelude::*;
use sqldb::{Column, DataType, Database, EngineProfile, TableDump, Value};

/// Floats with deliberately hostile bit patterns: the dump format encodes
/// the raw IEEE-754 bits, so all of these must survive unchanged.
fn arb_float() -> BoxedStrategy<f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::NAN),
        Just(-f64::NAN),
        Just(f64::from_bits(0x7ff8_dead_beef_0001)), // NaN with a payload
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        Just(f64::from_bits(1)), // smallest subnormal
        any::<u64>().prop_map(f64::from_bits),
        -1.0e9..1.0e9f64,
    ]
    .boxed()
}

fn arb_int() -> BoxedStrategy<i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MAX),
        Just(0i64),
        Just(-1i64),
        any::<i64>(),
    ]
    .boxed()
}

/// Strings that stress the tab/newline-delimited framing and the escaper:
/// empty, embedded tabs/newlines/CRs, literal backslashes, unicode.
fn arb_text() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        Just("tab\there".to_string()),
        Just("line1\nline2\r\n".to_string()),
        Just("back\\slash \\t literal".to_string()),
        Just("héllo ∞ ✓ 💾 \u{202e}rtl".to_string()),
        "[a-z0-9 \t\n\r\\\\éλ∞🦀]{0,16}",
    ]
    .boxed()
}

/// One row covering every `Value` variant: an INT, FLOAT, TEXT and BOOL
/// column, each independently NULL ~20% of the time.
fn arb_row() -> BoxedStrategy<Vec<Value>> {
    (
        (0u8..5, arb_int()),
        (0u8..5, arb_float()),
        (0u8..5, arb_text()),
        (0u8..5, any::<bool>()),
    )
        .prop_map(|((ki, i), (kf, f), (kt, t), (kb, b))| {
            let pick = |k: u8, v: Value| if k == 0 { Value::Null } else { v };
            vec![
                pick(ki, Value::Int(i)),
                pick(kf, Value::Float(f)),
                pick(kt, Value::Text(t)),
                pick(kb, Value::Bool(b)),
            ]
        })
        .boxed()
}

fn arb_dump() -> BoxedStrategy<TableDump> {
    proptest::collection::vec(arb_row(), 0..25)
        .prop_map(|rows| TableDump {
            name: "t".to_string(),
            columns: vec![
                Column::new("c_int", DataType::Int),
                Column::new("c_float", DataType::Float),
                Column::new("c_text", DataType::Text),
                Column::new("c_bool", DataType::Bool),
            ],
            primary_key: None,
            rows,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The text encoding is lossless for every value pattern.
    #[test]
    fn encode_decode_is_identity(dump in arb_dump()) {
        let decoded = TableDump::decode(&dump.encode()).unwrap();
        prop_assert_eq!(decoded, dump);
    }

    /// `import_table(export_table(t)) == t`: a dump imported into one
    /// database, exported, imported into a *second* database and exported
    /// again is identical at every step — the checkpoint/restore path
    /// cannot corrupt a table.
    #[test]
    fn export_import_is_identity(dump in arb_dump()) {
        let db1 = Database::new(EngineProfile::Postgres);
        db1.import_table(&dump).unwrap();
        let exported = db1.export_table(&dump.name).unwrap();
        prop_assert_eq!(&exported, &dump);

        let db2 = Database::new(EngineProfile::Postgres);
        db2.import_table(&exported).unwrap();
        let again = db2.export_table(&dump.name).unwrap();
        prop_assert_eq!(again, dump);
    }
}

/// Primary keys survive the round trip (kept out of the property tests so
/// random rows need not be made unique).
#[test]
fn primary_key_round_trips() {
    let dump = TableDump {
        name: "keyed".to_string(),
        columns: vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Float),
        ],
        primary_key: Some(0),
        rows: vec![
            vec![Value::Int(i64::MIN), Value::Float(f64::NAN)],
            vec![Value::Int(0), Value::Float(-0.0)],
            vec![Value::Int(i64::MAX), Value::Float(f64::NEG_INFINITY)],
        ],
    };
    let db = Database::new(EngineProfile::Postgres);
    db.import_table(&dump).unwrap();
    let exported = db.export_table("keyed").unwrap();
    assert_eq!(exported.primary_key, Some(0));
    assert_eq!(exported, dump);
}

/// Hostile table / column names survive the escaped header lines.
#[test]
fn hostile_names_round_trip() {
    let dump = TableDump {
        name: "we\tird\nname \\x".to_string(),
        columns: vec![Column::new("col\tumn \\n", DataType::Text)],
        primary_key: None,
        rows: vec![vec![Value::Text("v".into())]],
    };
    assert_eq!(TableDump::decode(&dump.encode()).unwrap(), dump);
}
