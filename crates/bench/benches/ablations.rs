//! Ablation benches for the design choices DESIGN.md calls out:
//! * `Rmjoin` materialization on/off (paper §V-B's constant-join
//!   optimization);
//! * partition count (paper §V-E: "the more partitions that exist, the
//!   faster intermediate results will be propagated");
//! * insert batch size during partition loading (the JDBC batching the
//!   paper leans on in §IV-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbcp::{Driver, LocalDriver};
use sqldb::{Database, EngineProfile};
use sqloop::{ExecutionMode, SQLoop, SqloopConfig};
use std::sync::Arc;

fn driver_with_graph() -> Arc<LocalDriver> {
    let g = graphgen::web_graph(400, 4, 17);
    let db = Database::new(EngineProfile::Postgres);
    let driver = Arc::new(LocalDriver::new(db));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &g).unwrap();
    driver
}

fn pr_config() -> SqloopConfig {
    SqloopConfig {
        mode: ExecutionMode::Sync,
        threads: 1,
        partitions: 16,
        ..SqloopConfig::default()
    }
}

fn ablation_materialize(c: &mut Criterion) {
    let driver = driver_with_graph();
    let query = workloads::queries::pagerank(5);
    let mut group = c.benchmark_group("ablation/rmjoin");
    group.sample_size(10);
    for materialize in [true, false] {
        let label = if materialize {
            "materialized"
        } else {
            "rejoin_each_task"
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &materialize, |b, &m| {
            let mut config = pr_config();
            config.materialize_join = m;
            let sq = SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(config);
            b.iter(|| sq.execute(&query).unwrap())
        });
    }
    group.finish();
}

fn ablation_partitions(c: &mut Criterion) {
    let driver = driver_with_graph();
    let query = workloads::queries::pagerank(5);
    let mut group = c.benchmark_group("ablation/partitions");
    group.sample_size(10);
    for partitions in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, &n| {
                let mut config = pr_config();
                config.partitions = n;
                let sq = SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(config);
                b.iter(|| sq.execute(&query).unwrap())
            },
        );
    }
    group.finish();
}

fn ablation_insert_batch(c: &mut Criterion) {
    let driver = driver_with_graph();
    let query = workloads::queries::pagerank(2);
    let mut group = c.benchmark_group("ablation/insert_batch_rows");
    group.sample_size(10);
    for batch in [1usize, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &n| {
            let mut config = pr_config();
            config.insert_batch_rows = n;
            let sq = SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(config);
            b.iter(|| sq.execute(&query).unwrap())
        });
    }
    group.finish();
}

fn ablation_single_vs_parallel(c: &mut Criterion) {
    let driver = driver_with_graph();
    let query = workloads::queries::pagerank(5);
    let mut group = c.benchmark_group("ablation/executor");
    group.sample_size(10);
    for mode in [
        ExecutionMode::Single,
        ExecutionMode::Sync,
        ExecutionMode::Async,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
            let mut config = pr_config();
            config.mode = m;
            let sq = SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(config);
            b.iter(|| sq.execute(&query).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_materialize,
    ablation_partitions,
    ablation_insert_batch,
    ablation_single_vs_parallel
);
criterion_main!(benches);
