//! Runtime operator profiling: per-operator rows-out / next-calls /
//! elapsed counters collected during execution, rendered as the plan tree
//! `EXPLAIN` prints — but with actuals.
//!
//! The executor materializes phase by phase (scan → join → filter →
//! aggregate → distinct → sort/limit), so the profiler is a small stack
//! machine mirroring that bottom-up order: producers push [`leaf`]
//! nodes, consumers [`wrap`] the nodes their inputs just pushed. The
//! `calls` field counts rows *pulled from inputs* — the volcano
//! `next()`-call equivalent for a materializing executor.
//!
//! A profiler handle is `Option<&OpProfiler>` on the executor; every
//! instrumentation site is behind `prof.is_some()`, so the disabled cost
//! is one branch per phase, not per row.
//!
//! [`leaf`]: OpProfiler::leaf
//! [`wrap`]: OpProfiler::wrap

use std::cell::RefCell;

/// One profiled operator with its actuals and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpNode {
    /// Operator label, matching the `EXPLAIN` vocabulary
    /// (`SeqScan t`, `HashJoin`, `Filter`, …).
    pub label: String,
    /// Rows this operator produced.
    pub rows_out: u64,
    /// Rows pulled from inputs (volcano next-call equivalent); for leaf
    /// scans this equals `rows_out`.
    pub calls: u64,
    /// Wall time spent in this operator *including* its children, µs.
    pub elapsed_us: u64,
    /// Column batches this operator processed (0 when the operator ran on
    /// the row-at-a-time path or predates the vectorized executor).
    pub batches: u64,
    /// Input operators, outermost-input first.
    pub children: Vec<OpNode>,
}

impl OpNode {
    /// Renders this subtree as indented `EXPLAIN ANALYZE` lines. Operators
    /// that ran vectorized append their batch actuals (`batches=…
    /// rows/batch=…`); row-path operators keep the historical format.
    pub fn render(&self, depth: usize, out: &mut Vec<String>) {
        let mut line = format!(
            "{}{} (actual rows={} calls={} time_us={}",
            "  ".repeat(depth),
            self.label,
            self.rows_out,
            self.calls,
            self.elapsed_us,
        );
        if self.batches > 0 {
            line.push_str(&format!(
                " batches={} rows/batch={}",
                self.batches,
                self.calls / self.batches
            ));
        }
        line.push(')');
        out.push(line);
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }

    /// Flattens the subtree, pre-order.
    pub fn flatten<'a>(&'a self, out: &mut Vec<&'a OpNode>) {
        out.push(self);
        for c in &self.children {
            c.flatten(out);
        }
    }
}

/// Collects [`OpNode`]s during one statement's execution.
///
/// Interior-mutable so the `Copy` executor can record through a shared
/// reference; single-statement scope, never shared across threads.
#[derive(Debug, Default)]
pub struct OpProfiler {
    stack: RefCell<Vec<OpNode>>,
}

impl OpProfiler {
    /// Creates an empty profiler.
    pub fn new() -> OpProfiler {
        OpProfiler::default()
    }

    /// Pushes a producer node with no inputs (scans, Values, Result).
    pub fn leaf(&self, label: String, rows_out: u64, elapsed_us: u64) {
        self.stack.borrow_mut().push(OpNode {
            label,
            rows_out,
            calls: rows_out,
            elapsed_us,
            batches: 0,
            children: Vec::new(),
        });
    }

    /// [`Self::leaf`] for a vectorized producer, recording how many column
    /// batches it emitted.
    pub fn leaf_batched(&self, label: String, rows_out: u64, elapsed_us: u64, batches: u64) {
        self.stack.borrow_mut().push(OpNode {
            label,
            rows_out,
            calls: rows_out,
            elapsed_us,
            batches,
            children: Vec::new(),
        });
    }

    /// Pops the last `n` pushed nodes as children of a new node. Clamped
    /// to what is available, so a mismatched site degrades the tree shape
    /// instead of panicking mid-statement.
    pub fn wrap(&self, n: usize, label: String, rows_out: u64, calls: u64, elapsed_us: u64) {
        self.wrap_batched(n, label, rows_out, calls, elapsed_us, 0);
    }

    /// [`Self::wrap`] for a vectorized consumer, recording how many column
    /// batches it pulled from its inputs.
    pub fn wrap_batched(
        &self,
        n: usize,
        label: String,
        rows_out: u64,
        calls: u64,
        elapsed_us: u64,
        batches: u64,
    ) {
        let mut stack = self.stack.borrow_mut();
        let n = n.min(stack.len());
        let at = stack.len() - n;
        let children: Vec<OpNode> = stack.split_off(at);
        stack.push(OpNode {
            label,
            rows_out,
            calls,
            elapsed_us,
            batches,
            children,
        });
    }

    /// Number of nodes currently at the top level.
    pub fn depth(&self) -> usize {
        self.stack.borrow().len()
    }

    /// Takes the collected roots (normally exactly one per statement).
    pub fn take(&self) -> Vec<OpNode> {
        std::mem::take(&mut *self.stack.borrow_mut())
    }
}

/// Micros elapsed since `start`, saturating into `u64`.
pub(crate) fn us_since(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_machine_builds_a_tree() {
        let p = OpProfiler::new();
        p.leaf("SeqScan a".into(), 10, 5);
        p.leaf("SeqScan b".into(), 20, 7);
        p.wrap(2, "HashJoin".into(), 15, 30, 40);
        p.wrap(1, "Filter".into(), 3, 15, 50);
        let roots = p.take();
        assert_eq!(roots.len(), 1);
        let filter = &roots[0];
        assert_eq!(filter.label, "Filter");
        assert_eq!(filter.rows_out, 3);
        assert_eq!(filter.calls, 15);
        let join = &filter.children[0];
        assert_eq!(join.label, "HashJoin");
        assert_eq!(join.children.len(), 2);
        assert_eq!(join.children[0].label, "SeqScan a");
        assert_eq!(join.children[1].label, "SeqScan b");
    }

    #[test]
    fn wrap_clamps_to_available_nodes() {
        let p = OpProfiler::new();
        p.leaf("SeqScan t".into(), 1, 1);
        p.wrap(5, "Sort (1 keys)".into(), 1, 1, 2);
        let roots = p.take();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        // empty stack: wrap produces a childless node, no panic
        p.wrap(2, "Limit 1".into(), 0, 0, 0);
        assert_eq!(p.take()[0].children.len(), 0);
    }

    #[test]
    fn render_matches_explain_indentation() {
        let p = OpProfiler::new();
        p.leaf("SeqScan t".into(), 4, 9);
        p.wrap(1, "Filter".into(), 2, 4, 12);
        let mut lines = Vec::new();
        p.take()[0].render(0, &mut lines);
        assert_eq!(
            lines,
            vec![
                "Filter (actual rows=2 calls=4 time_us=12)",
                "  SeqScan t (actual rows=4 calls=4 time_us=9)",
            ]
        );
    }

    #[test]
    fn batched_nodes_render_batch_actuals() {
        let p = OpProfiler::new();
        p.leaf_batched("SeqScan t".into(), 10, 9, 3);
        p.wrap_batched(1, "Filter".into(), 4, 10, 12, 3);
        let mut lines = Vec::new();
        p.take()[0].render(0, &mut lines);
        assert_eq!(
            lines,
            vec![
                "Filter (actual rows=4 calls=10 time_us=12 batches=3 rows/batch=3)",
                "  SeqScan t (actual rows=10 calls=10 time_us=9 batches=3 rows/batch=3)",
            ]
        );
    }
}
