//! Server resource-governance integration tests: admission control under
//! concurrent load, statement shedding with client-side retry, and the
//! server-wide statement timeout — all over the real wire protocol.

use dbcp::{is_transient, Driver, RetryPolicy, Server, ServerConfig, TcpDriver};
use sqldb::{Database, DbError, EngineProfile, Value};
use std::time::{Duration, Instant};

/// Polls `cond` for up to two seconds.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn admission_control_rejects_exactly_the_overflow() {
    const LIMIT: usize = 4;
    const OVERFLOW: usize = 3;
    let db = Database::new(EngineProfile::Postgres);
    let server = Server::bind_with(
        db,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: LIMIT,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    // the driver's profile probe takes (and quickly releases) one slot
    let driver = TcpDriver::connect(&addr).unwrap();
    assert!(eventually(|| server.open_connections() == 0));

    // fill the server, proving each admitted connection actually works
    let mut admitted = Vec::new();
    for i in 0..LIMIT {
        let mut c = driver.connect().unwrap();
        if i == 0 {
            c.execute("CREATE TABLE t (a INT)").unwrap();
            c.execute("INSERT INTO t VALUES (1)").unwrap();
        }
        assert_eq!(
            c.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(1),
            "admitted connection {i} must serve statements"
        );
        admitted.push(c);
    }

    // everything past the limit is rejected fast, typed, and concurrently
    let started = Instant::now();
    let rejections: Vec<_> = (0..OVERFLOW)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || TcpDriver::connect(&addr).err())
        })
        .collect();
    let mut typed = 0;
    for handle in rejections {
        match handle.join().unwrap() {
            Some(DbError::Overloaded(_)) => typed += 1,
            other => panic!("expected a typed Overloaded rejection, got {other:?}"),
        }
    }
    assert_eq!(typed, OVERFLOW, "exactly the overflow is rejected");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "rejections must be fast, took {:?}",
        started.elapsed()
    );
    assert!(is_transient(&DbError::Overloaded("x".into())));

    // admitted work is unaffected by the rejected burst
    for c in &mut admitted {
        assert_eq!(
            c.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(1)
        );
    }

    // releasing connections frees slots for new clients
    drop(admitted);
    assert!(
        eventually(|| server.open_connections() == 0),
        "slots must drain after disconnect, {} still open",
        server.open_connections()
    );
    let mut again = driver.connect().unwrap();
    assert!(again.query("SELECT COUNT(*) FROM t").is_ok());

    server.shutdown();
}

#[test]
fn load_shed_statements_are_retryable_and_work_completes() {
    let db = Database::new(EngineProfile::Postgres);
    let server = Server::bind_with(
        db,
        "127.0.0.1:0",
        ServerConfig {
            shed_high_water: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let driver = TcpDriver::connect(&addr).unwrap();

    let mut setup = driver.connect().unwrap();
    setup.execute("CREATE TABLE s (a INT)").unwrap();

    // one long batch occupies the single in-flight slot for a while
    let batch: Vec<String> = (0..20_000)
        .map(|i| format!("INSERT INTO s VALUES ({i})"))
        .collect();
    let writer = {
        let driver = driver.clone();
        std::thread::spawn(move || {
            let mut c = driver.connect().unwrap();
            c.execute_batch(&batch).unwrap();
        })
    };

    // a second client eventually collides with the batch and is shed
    let mut reader = driver.connect().unwrap();
    let mut shed_error = None;
    while !writer.is_finished() {
        match reader.query("SELECT COUNT(*) FROM s") {
            Ok(_) => {}
            Err(e) => {
                shed_error = Some(e);
                break;
            }
        }
    }
    writer.join().unwrap();
    if let Some(e) = shed_error {
        assert!(
            matches!(e, DbError::Overloaded(_)),
            "shed statements must be typed, got {e:?}"
        );
        assert!(is_transient(&e), "shed statements must be retryable");
    }

    // with the load gone, a RetryPolicy-wrapped statement completes
    let policy = RetryPolicy::new(5, Duration::from_millis(1));
    let count = policy
        .run(|_| reader.query("SELECT COUNT(*) FROM s"))
        .unwrap();
    assert_eq!(count.rows[0][0], Value::Int(20_000));

    server.shutdown();
}

#[test]
fn server_statement_timeout_applies_and_clients_may_override() {
    let db = Database::new(EngineProfile::Postgres);
    let server = Server::bind_with(
        db,
        "127.0.0.1:0",
        ServerConfig {
            // expires before any statement can start: every statement on a
            // fresh session must fail typed
            statement_timeout: Some(Duration::from_nanos(1)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();

    // seed through a session that lifted its own deadline
    let mut setup = driver.connect().unwrap();
    assert!(setup.set_statement_timeout(None).unwrap());
    setup.execute("CREATE TABLE t (a INT)").unwrap();
    setup.execute("INSERT INTO t VALUES (1)").unwrap();

    // a fresh session inherits the server default: queries fail typed
    let mut c = driver.connect().unwrap();
    let err = c.query("SELECT COUNT(*) FROM t");
    assert!(
        matches!(err, Err(DbError::Timeout(_))),
        "server default timeout must reach the session, got {err:?}"
    );

    // the client lifts its own session's deadline over the wire
    assert!(c.set_statement_timeout(None).unwrap());
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
        Value::Int(1)
    );

    // a later session starts back at the server default
    let mut fresh = driver.connect().unwrap();
    let err = fresh.query("SELECT COUNT(*) FROM t");
    assert!(matches!(err, Err(DbError::Timeout(_))), "{err:?}");

    server.shutdown();
}
