//! Join algorithms: hash join, index nested-loop, block nested-loop.
//!
//! Which algorithm runs is decided by the engine profile's
//! [`crate::profile::JoinStrategy`], reproducing the
//! architectural difference between the paper's three engines: the
//! PostgreSQL profile hash-joins equi-joins, the MySQL/MariaDB profiles only
//! have nested loops (upgraded to index nested-loop when the inner side is a
//! base table with an index on the join column — which is why SQLoop creates
//! indexes on every table it manages, paper §V-C).

use crate::ast::{BinaryOp, Expr, JoinType};
use crate::bind::{bind_scalar, BoundExpr, Scope};
use crate::catalog::TableHandle;
use crate::error::DbResult;
use crate::profile::JoinStrategy;
use crate::stats::Stats;
use crate::value::{Row, Value};
use std::collections::HashMap;

/// A materialized relation flowing through the executor.
#[derive(Debug, Clone)]
pub struct Rel {
    /// Visible relations and their column names.
    pub scope: Scope,
    /// Materialized rows (concatenation of all scope relations' columns).
    pub rows: Vec<Row>,
    /// For each scope relation: the backing base table, when the relation is
    /// a direct table scan (enables index nested-loop joins).
    pub bases: Vec<Option<TableHandle>>,
}

impl Rel {
    /// A relation with a single empty row and no columns (`SELECT` without
    /// `FROM`).
    pub fn unit() -> Rel {
        Rel {
            scope: Scope::new(),
            rows: vec![Vec::new()],
            bases: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.scope.arity()
    }
}

/// Splits an expression into its top-level `AND` conjuncts.
pub fn split_conjuncts(expr: BoundExpr) -> Vec<BoundExpr> {
    match expr {
        BoundExpr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut v = split_conjuncts(*left);
            v.extend(split_conjuncts(*right));
            v
        }
        other => vec![other],
    }
}

/// An equality `left_col = right_col` crossing the join boundary.
#[derive(Debug, Clone, Copy)]
struct EquiKey {
    /// Column offset into the left row.
    left: usize,
    /// Column offset into the *right* row (right-relative).
    right: usize,
}

/// Finds one usable equi-join key among `conjuncts`; returns the key and the
/// residual conjuncts (all others).
fn extract_equi_key(
    conjuncts: Vec<BoundExpr>,
    left_arity: usize,
    total_arity: usize,
) -> (Option<EquiKey>, Vec<BoundExpr>) {
    let mut key = None;
    let mut residual = Vec::new();
    for c in conjuncts {
        if key.is_none() {
            if let BoundExpr::Binary {
                ref left,
                op: BinaryOp::Eq,
                ref right,
            } = c
            {
                if let (BoundExpr::Column(a), BoundExpr::Column(b)) =
                    (left.as_ref(), right.as_ref())
                {
                    let (a, b) = (*a, *b);
                    if a < left_arity && b >= left_arity && b < total_arity {
                        key = Some(EquiKey {
                            left: a,
                            right: b - left_arity,
                        });
                        continue;
                    }
                    if b < left_arity && a >= left_arity && a < total_arity {
                        key = Some(EquiKey {
                            left: b,
                            right: a - left_arity,
                        });
                        continue;
                    }
                }
            }
        }
        residual.push(c);
    }
    (key, residual)
}

/// Whether every value in `col` is `Int` or `Null` — the guard for the
/// typed i64 join fast path. With both sides integer-only, exact i64
/// equality coincides with [`Value::sql_eq`] (no cross-type numeric
/// matching can occur), so a `HashMap<i64, _>` build is semantics-preserving.
fn int_keys_only(rows: &[Row], col: usize) -> bool {
    rows.iter()
        .all(|r| matches!(r[col], Value::Int(_) | Value::Null))
}

/// Hash-join build table: candidate row indices by key. The typed variant
/// skips per-probe `Value` hashing/equality entirely; the paper's graph
/// workloads (integer node ids) always take it.
enum KeyMap<'a> {
    Int(HashMap<i64, Vec<usize>>),
    Any(HashMap<&'a Value, Vec<usize>>),
}

impl<'a> KeyMap<'a> {
    /// Builds the table over non-null keys, preserving row order within
    /// each key's candidate list.
    fn build(rows: &'a [Row], col: usize, typed: bool) -> KeyMap<'a> {
        if typed {
            let mut m: HashMap<i64, Vec<usize>> = HashMap::with_capacity(rows.len());
            for (i, r) in rows.iter().enumerate() {
                if let Value::Int(k) = r[col] {
                    m.entry(k).or_default().push(i);
                }
            }
            KeyMap::Int(m)
        } else {
            let mut m: HashMap<&Value, Vec<usize>> = HashMap::with_capacity(rows.len());
            for (i, r) in rows.iter().enumerate() {
                let kv = &r[col];
                if !kv.is_null() {
                    m.entry(kv).or_default().push(i);
                }
            }
            KeyMap::Any(m)
        }
    }

    /// Candidate row indices matching `kv` (never called with NULL).
    fn get(&self, kv: &Value) -> Option<&[usize]> {
        match self {
            KeyMap::Int(m) => match kv {
                Value::Int(k) => m.get(k).map(Vec::as_slice),
                _ => None,
            },
            KeyMap::Any(m) => m.get(kv).map(Vec::as_slice),
        }
    }
}

/// Joins `left` and `right`, appending the right relation's scope.
///
/// `on` is bound against the combined scope. The algorithm is chosen from
/// `strategy` and the shape of the `ON` condition (see module docs).
///
/// # Errors
/// Returns binder/eval errors from the `ON` expression.
pub fn join_rels(
    left: Rel,
    right: Rel,
    join_type: JoinType,
    on: Option<&Expr>,
    strategy: JoinStrategy,
    stats: &Stats,
) -> DbResult<Rel> {
    // combined scope
    let mut scope = left.scope.clone();
    for r in right.scope.relations() {
        scope.push(r.clone());
    }
    let left_arity = left.scope.arity();
    let right_arity = right.scope.arity();
    let total_arity = left_arity + right_arity;

    let (key, residual) = match on {
        Some(e) => {
            let bound = bind_scalar(e, &scope)?;
            extract_equi_key(split_conjuncts(bound), left_arity, total_arity)
        }
        None => (None, Vec::new()),
    };

    let mut out_rows: Vec<Row> = Vec::new();
    let null_right: Row = vec![Value::Null; right_arity];

    let matches_residual = |combined: &Row| -> DbResult<bool> {
        for r in &residual {
            if !r.eval(combined, &[])?.is_truthy() {
                return Ok(false);
            }
        }
        Ok(true)
    };

    match key {
        Some(key) => {
            // try index nested-loop: single base-table right side with an
            // index on the join column
            let index_handle = if right.bases.len() == 1 {
                right.bases[0].as_ref().and_then(|h| {
                    if h.read().has_index_on(key.right) {
                        Some(h.clone())
                    } else {
                        None
                    }
                })
            } else {
                None
            };
            let use_index_nl = index_handle.is_some() && strategy != JoinStrategy::Hash;
            if use_index_nl {
                let handle = index_handle.expect("checked above");
                let table = handle.read();
                for lrow in &left.rows {
                    let kv = &lrow[key.left];
                    let mut matched = false;
                    if !kv.is_null() {
                        stats.add_index_lookups(1);
                        if let Some(slots) = table.index_lookup(key.right, kv) {
                            for slot in slots {
                                if let Some(rrow) = table.row(slot) {
                                    let mut combined = lrow.clone();
                                    combined.extend(rrow.iter().cloned());
                                    if matches_residual(&combined)? {
                                        matched = true;
                                        out_rows.push(combined);
                                    }
                                }
                            }
                        }
                    }
                    if !matched && join_type == JoinType::Left {
                        let mut combined = lrow.clone();
                        combined.extend(null_right.iter().cloned());
                        out_rows.push(combined);
                    }
                }
            } else if strategy == JoinStrategy::Hash {
                // hash join: build the hash table on the smaller relation
                // (row order is not a relational guarantee, so the swap only
                // changes output order, never the row multiset)
                let typed =
                    int_keys_only(&left.rows, key.left) && int_keys_only(&right.rows, key.right);
                if left.rows.len() < right.rows.len() {
                    // build on left, probe with right; LEFT JOIN padding needs
                    // per-build-row matched flags since matches arrive in
                    // probe order
                    let table = KeyMap::build(&left.rows, key.left, typed);
                    let mut matched = vec![false; left.rows.len()];
                    for rrow in &right.rows {
                        let kv = &rrow[key.right];
                        if kv.is_null() {
                            continue;
                        }
                        if let Some(cands) = table.get(kv) {
                            for &i in cands {
                                let mut combined = left.rows[i].clone();
                                combined.extend(rrow.iter().cloned());
                                if matches_residual(&combined)? {
                                    matched[i] = true;
                                    out_rows.push(combined);
                                }
                            }
                        }
                    }
                    if join_type == JoinType::Left {
                        for (i, lrow) in left.rows.iter().enumerate() {
                            if !matched[i] {
                                let mut combined = lrow.clone();
                                combined.extend(null_right.iter().cloned());
                                out_rows.push(combined);
                            }
                        }
                    }
                } else {
                    // build on right, probe with left
                    let table = KeyMap::build(&right.rows, key.right, typed);
                    for lrow in &left.rows {
                        let kv = &lrow[key.left];
                        let mut matched = false;
                        if !kv.is_null() {
                            if let Some(cands) = table.get(kv) {
                                for &i in cands {
                                    let mut combined = lrow.clone();
                                    combined.extend(right.rows[i].iter().cloned());
                                    if matches_residual(&combined)? {
                                        matched = true;
                                        out_rows.push(combined);
                                    }
                                }
                            }
                        }
                        if !matched && join_type == JoinType::Left {
                            let mut combined = lrow.clone();
                            combined.extend(null_right.iter().cloned());
                            out_rows.push(combined);
                        }
                    }
                }
            } else {
                // block nested-loop with an equality check inlined
                let buffer = match strategy {
                    JoinStrategy::BlockNestedLoop { buffer_rows } => buffer_rows.max(1),
                    JoinStrategy::Hash => unreachable!(),
                };
                // with integer-only keys on both sides the per-pair compare
                // is one i64 equality instead of a Value dispatch
                let typed =
                    int_keys_only(&left.rows, key.left) && int_keys_only(&right.rows, key.right);
                let mut matched = vec![false; left.rows.len()];
                for (chunk_idx, chunk) in left.rows.chunks(buffer).enumerate() {
                    let base = chunk_idx * buffer;
                    for rrow in &right.rows {
                        let rkv = &rrow[key.right];
                        if rkv.is_null() {
                            continue;
                        }
                        // same per-pair totals as the scalar loop, one
                        // atomic add per inner row instead of per pair
                        stats.add_rows_joined(chunk.len() as u64);
                        if typed {
                            let rk = match rkv {
                                Value::Int(k) => *k,
                                _ => unreachable!("typed path guards Int-only keys"),
                            };
                            for (off, lrow) in chunk.iter().enumerate() {
                                if matches!(lrow[key.left], Value::Int(lk) if lk == rk) {
                                    let mut combined = lrow.clone();
                                    combined.extend(rrow.iter().cloned());
                                    if matches_residual(&combined)? {
                                        matched[base + off] = true;
                                        out_rows.push(combined);
                                    }
                                }
                            }
                        } else {
                            for (off, lrow) in chunk.iter().enumerate() {
                                if lrow[key.left].sql_eq(rkv) == Some(true) {
                                    let mut combined = lrow.clone();
                                    combined.extend(rrow.iter().cloned());
                                    if matches_residual(&combined)? {
                                        matched[base + off] = true;
                                        out_rows.push(combined);
                                    }
                                }
                            }
                        }
                    }
                }
                if join_type == JoinType::Left {
                    // preserve input order for unmatched rows by appending
                    for (i, lrow) in left.rows.iter().enumerate() {
                        if !matched[i] {
                            let mut combined = lrow.clone();
                            combined.extend(null_right.iter().cloned());
                            out_rows.push(combined);
                        }
                    }
                }
            }
        }
        None => {
            // no equi key: nested loop with the full ON predicate
            let full_on = match on {
                Some(_) => {
                    // re-bind for the residual path (residual already holds
                    // all conjuncts when no key was extracted)
                    residual
                }
                None => Vec::new(),
            };
            for lrow in &left.rows {
                let mut matched = false;
                for rrow in &right.rows {
                    stats.add_rows_joined(1);
                    let mut combined = lrow.clone();
                    combined.extend(rrow.iter().cloned());
                    let mut ok = true;
                    for c in &full_on {
                        if !c.eval(&combined, &[])?.is_truthy() {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        matched = true;
                        out_rows.push(combined);
                    }
                }
                if !matched && join_type == JoinType::Left {
                    let mut combined = lrow.clone();
                    combined.extend(null_right.iter().cloned());
                    out_rows.push(combined);
                }
            }
        }
    }

    stats.add_rows_scanned(out_rows.len() as u64);
    let mut bases = left.bases;
    bases.extend(right.bases);
    Ok(Rel {
        scope,
        rows: out_rows,
        bases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::ScopeRelation;
    use crate::parser::parse_expression;

    fn rel(qualifier: &str, cols: &[&str], rows: Vec<Row>) -> Rel {
        let mut scope = Scope::new();
        scope.push(ScopeRelation {
            qualifier: qualifier.into(),
            columns: cols.iter().map(|c| c.to_string()).collect(),
        });
        Rel {
            scope,
            rows,
            bases: vec![None],
        }
    }

    fn left_rel() -> Rel {
        rel(
            "l",
            &["id", "v"],
            vec![
                vec![Value::Int(1), Value::Text("a".into())],
                vec![Value::Int(2), Value::Text("b".into())],
                vec![Value::Int(3), Value::Text("c".into())],
            ],
        )
    }

    fn right_rel() -> Rel {
        rel(
            "r",
            &["id", "w"],
            vec![
                vec![Value::Int(1), Value::Float(0.5)],
                vec![Value::Int(1), Value::Float(0.7)],
                vec![Value::Int(3), Value::Float(0.9)],
            ],
        )
    }

    fn run(join_type: JoinType, strategy: JoinStrategy, on: &str) -> Vec<Row> {
        let stats = Stats::default();
        let on = parse_expression(on).unwrap();
        let mut out = join_rels(
            left_rel(),
            right_rel(),
            join_type,
            Some(&on),
            strategy,
            &stats,
        )
        .unwrap()
        .rows;
        out.sort();
        out
    }

    #[test]
    fn hash_and_bnl_agree_on_inner_join() {
        let h = run(JoinType::Inner, JoinStrategy::Hash, "l.id = r.id");
        let b = run(
            JoinType::Inner,
            JoinStrategy::BlockNestedLoop { buffer_rows: 2 },
            "l.id = r.id",
        );
        assert_eq!(h, b);
        assert_eq!(h.len(), 3); // 1 matches twice, 3 once
    }

    #[test]
    fn hash_and_bnl_agree_on_left_join() {
        let h = run(JoinType::Left, JoinStrategy::Hash, "l.id = r.id");
        let b = run(
            JoinType::Left,
            JoinStrategy::BlockNestedLoop { buffer_rows: 1 },
            "l.id = r.id",
        );
        assert_eq!(h, b);
        assert_eq!(h.len(), 4); // id=2 preserved with NULLs
        assert!(h.iter().any(|r| r[2].is_null()));
    }

    #[test]
    fn reversed_equality_detected() {
        let h = run(JoinType::Inner, JoinStrategy::Hash, "r.id = l.id");
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn residual_condition_applied() {
        let h = run(
            JoinType::Inner,
            JoinStrategy::Hash,
            "l.id = r.id AND r.w > 0.6",
        );
        assert_eq!(h.len(), 2);
        // LEFT JOIN keeps unmatched-after-residual rows
        let h = run(
            JoinType::Left,
            JoinStrategy::Hash,
            "l.id = r.id AND r.w > 100.0",
        );
        assert_eq!(h.len(), 3);
        assert!(h.iter().all(|r| r[2].is_null()));
    }

    #[test]
    fn non_equi_join_falls_back_to_nested_loop() {
        let h = run(JoinType::Inner, JoinStrategy::Hash, "l.id < r.id");
        // pairs: (1,3),(2,3) plus (1,... r.id=1? no 1<1 false) -> (1,3),(2,3)
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn cross_join() {
        let stats = Stats::default();
        let out = join_rels(
            left_rel(),
            right_rel(),
            JoinType::Cross,
            None,
            JoinStrategy::Hash,
            &stats,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 9);
        assert_eq!(out.arity(), 4);
    }

    #[test]
    fn null_keys_never_match() {
        let stats = Stats::default();
        let l = rel("l", &["id"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let r = rel("r", &["id"], vec![vec![Value::Null], vec![Value::Int(1)]]);
        let on = parse_expression("l.id = r.id").unwrap();
        let out = join_rels(l, r, JoinType::Inner, Some(&on), JoinStrategy::Hash, &stats).unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    #[test]
    fn hash_join_build_side_swap_preserves_results() {
        // the same join with a small left (→ left build) and a small right
        // (→ right build) must both match the nested-loop oracle, with a
        // residual in play and for both join types
        let stats = Stats::default();
        let small = |q: &str| {
            rel(
                q,
                &["id", "x"],
                vec![
                    vec![Value::Int(0), Value::Int(100)],
                    vec![Value::Int(1), Value::Int(101)],
                    vec![Value::Int(7), Value::Int(107)], // unmatched
                ],
            )
        };
        let big = |q: &str| {
            rel(
                q,
                &["id", "x"],
                (0..20)
                    .map(|i| vec![Value::Int(i % 3), Value::Int(i)])
                    .collect(),
            )
        };
        // the residual passes for some matches and fails for others in both
        // orientations (sums span 100..126)
        let on = parse_expression("l.id = r.id AND l.x + r.x < 115").unwrap();
        for join_type in [JoinType::Inner, JoinType::Left] {
            for (l, r) in [(small("l"), big("r")), (big("l"), small("r"))] {
                let mut hash = join_rels(
                    l.clone(),
                    r.clone(),
                    join_type,
                    Some(&on),
                    JoinStrategy::Hash,
                    &stats,
                )
                .unwrap()
                .rows;
                let mut oracle = join_rels(
                    l,
                    r,
                    join_type,
                    Some(&on),
                    JoinStrategy::BlockNestedLoop { buffer_rows: 4 },
                    &stats,
                )
                .unwrap()
                .rows;
                hash.sort();
                oracle.sort();
                assert_eq!(
                    hash, oracle,
                    "{join_type:?}: build-side choice changed results"
                );
            }
        }
    }

    #[test]
    fn typed_fast_path_matches_generic_and_bails_on_mixed_keys() {
        let stats = Stats::default();
        // integer-only keys (plus NULLs) take the typed i64 build
        let l = rel(
            "l",
            &["id"],
            vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(2)]],
        );
        let r = rel(
            "r",
            &["id"],
            vec![vec![Value::Int(2)], vec![Value::Int(2)], vec![Value::Null]],
        );
        let on = parse_expression("l.id = r.id").unwrap();
        let out = join_rels(l, r, JoinType::Inner, Some(&on), JoinStrategy::Hash, &stats).unwrap();
        assert_eq!(out.rows.len(), 2);
        // a Float key on either side must disable the typed path so that
        // cross-type numeric equality (Int 1 = Float 1.0) still matches
        let l = rel("l", &["id"], vec![vec![Value::Int(1)]]);
        let r = rel("r", &["id"], vec![vec![Value::Float(1.0)]]);
        let out = join_rels(l, r, JoinType::Inner, Some(&on), JoinStrategy::Hash, &stats).unwrap();
        assert_eq!(out.rows.len(), 1, "Int 1 must hash-match Float 1.0");
        let l = rel("l", &["id"], vec![vec![Value::Int(1)]]);
        let r = rel("r", &["id"], vec![vec![Value::Float(1.0)]]);
        let out = join_rels(
            l,
            r,
            JoinType::Inner,
            Some(&on),
            JoinStrategy::BlockNestedLoop { buffer_rows: 2 },
            &stats,
        )
        .unwrap();
        assert_eq!(out.rows.len(), 1, "Int 1 must BNL-match Float 1.0");
    }

    #[test]
    fn conjunct_splitting() {
        let scope = {
            let mut s = Scope::new();
            s.push(ScopeRelation {
                qualifier: "t".into(),
                columns: vec!["a".into(), "b".into(), "c".into()],
            });
            s
        };
        let e = parse_expression("t.a = 1 AND t.b = 2 AND t.c > 3").unwrap();
        let bound = bind_scalar(&e, &scope).unwrap();
        assert_eq!(split_conjuncts(bound).len(), 3);
    }
}
