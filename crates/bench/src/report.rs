//! Plain-text tables and CSV emission for the figure harnesses.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Writes CSV content under `results/<name>.csv` (created on demand),
/// returning the path. Errors are printed, not fatal — benches should still
/// show their tables on a read-only filesystem.
pub fn write_csv(name: &str, content: &str) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: cannot create results/");
        return None;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, content) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Writes arbitrary content under `results/<name>` (created on demand),
/// returning the path. Errors are printed, not fatal, like [`write_csv`].
pub fn write_file(name: &str, content: &str) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: cannot create results/");
        return None;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Appends a record (its `Debug` form, one per line) to
/// `results/<name>.log` for post-processing.
pub fn append_log<T: std::fmt::Debug>(name: &str, record: &T) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.log"));
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{record:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["engine", "time"]);
        t.row(vec!["PostgreSQL".into(), "1.2s".into()]);
        t.row(vec!["MySQL".into(), "10.5s".into()]);
        let r = t.render();
        assert!(r.contains("engine"));
        assert!(r.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "q\"z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
