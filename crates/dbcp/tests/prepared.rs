//! Integration tests for the prepared-statement path: over the wire, across
//! reconnects, under the per-connection statement cap, and under chaos.

use dbcp::{
    ChaosConfig, ChaosDriver, Driver, FaultKind, LocalDriver, PipelineStep, PreparedStatement,
    ScheduledFault, Server, TcpDriver, MAX_PREPARED_PER_CONNECTION,
};
use sqldb::{Database, DbError, EngineProfile, StmtOutput, Value};
use std::sync::Arc;

fn tcp_fixture() -> (Database, Server, TcpDriver) {
    let db = Database::new(EngineProfile::Postgres);
    let server = Server::bind(db.clone(), "127.0.0.1:0").unwrap();
    let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();
    (db, server, driver)
}

#[test]
fn prepared_over_tcp_roundtrip_hits_plan_cache() {
    let (db, server, driver) = tcp_fixture();
    let mut conn = driver.connect().unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    let before = db.plan_cache_stats();

    let mut ins = PreparedStatement::new("INSERT INTO t VALUES (?, ?)");
    for i in 0..20i64 {
        ins.execute(
            conn.as_mut(),
            &[Value::Int(i), Value::Float(i as f64 * 0.5)],
        )
        .unwrap();
    }
    assert!(!ins.is_fallback());
    let r = conn.query("SELECT COUNT(*), SUM(v) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(20));
    assert_eq!(
        r.rows[0][1],
        Value::Float((0..20).map(|i| i as f64 * 0.5).sum())
    );

    // every execution after the prepare is a plan-cache hit
    let after = db.plan_cache_stats();
    assert!(
        after.hits >= before.hits + 19,
        "expected >= 19 new hits, stats before {before:?} after {after:?}"
    );
    ins.close(conn.as_mut()).unwrap();
    server.shutdown();
}

#[test]
fn prepared_param_errors_over_tcp() {
    let (_db, server, driver) = tcp_fixture();
    let mut conn = driver.connect().unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();

    let mut ins = PreparedStatement::new("INSERT INTO t VALUES (?)");
    // wrong arity: two values for one placeholder
    let err = ins.execute(conn.as_mut(), &[Value::Int(1), Value::Int(2)]);
    assert!(matches!(err, Err(DbError::Invalid(_))), "{err:?}");
    // wrong type: text into an INT column
    let err = ins.execute(conn.as_mut(), &[Value::Text("oops".into())]);
    assert!(matches!(err, Err(DbError::Invalid(_))), "{err:?}");
    // the connection stays usable and well-typed values still land
    ins.execute(conn.as_mut(), &[Value::Int(7)]).unwrap();
    let r = conn.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    server.shutdown();
}

#[test]
fn statement_table_cap_is_enforced_and_close_frees_a_slot() {
    let (_db, server, driver) = tcp_fixture();
    let mut conn = driver.connect().unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();

    let mut ids = Vec::new();
    for i in 0..MAX_PREPARED_PER_CONNECTION {
        let (id, _) = conn
            .prepare_statement(&format!("SELECT {i} FROM t"))
            .unwrap();
        ids.push(id);
    }
    let err = conn.prepare_statement("SELECT -1 FROM t");
    assert!(matches!(err, Err(DbError::BudgetExceeded(_))), "{err:?}");
    // closing one statement frees a slot; close is idempotent
    conn.close_prepared(ids[0]).unwrap();
    conn.close_prepared(ids[0]).unwrap();
    conn.prepare_statement("SELECT -1 FROM t").unwrap();
    server.shutdown();
}

#[test]
fn pipeline_over_tcp_returns_successful_prefix_then_error() {
    let (_db, server, driver) = tcp_fixture();
    let mut conn = driver.connect().unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();

    let mut ins = PreparedStatement::new("INSERT INTO t VALUES (?)");
    let steps = vec![
        ins.pipeline_step(conn.as_mut(), &[Value::Int(1)]).unwrap(),
        ins.pipeline_step(conn.as_mut(), &[Value::Int(2)]).unwrap(),
        // duplicate key: fails
        ins.pipeline_step(conn.as_mut(), &[Value::Int(1)]).unwrap(),
        // never reached
        ins.pipeline_step(conn.as_mut(), &[Value::Int(3)]).unwrap(),
    ];
    let outcome = conn.run_pipeline(&steps).unwrap();
    assert_eq!(
        outcome.outputs.len(),
        2,
        "failed step index is outputs.len()"
    );
    assert!(matches!(outcome.error, Some(DbError::Invalid(_))));
    let r = conn.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        r.rows[0][0],
        Value::Int(2),
        "step after the failure must not run"
    );

    // an all-green pipeline: one round-trip, all outputs
    let steps = vec![
        ins.pipeline_step(conn.as_mut(), &[Value::Int(10)]).unwrap(),
        PipelineStep::Execute("SELECT COUNT(*) FROM t".into()),
    ];
    let outcome = conn.run_pipeline(&steps).unwrap();
    assert!(outcome.error.is_none());
    assert_eq!(outcome.outputs.len(), 2);
    match &outcome.outputs[1] {
        StmtOutput::Rows(r) => assert_eq!(r.rows[0][0], Value::Int(3)),
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}

#[test]
fn prepared_handle_survives_tcp_reconnect() {
    let (_db, server, driver) = tcp_fixture();
    let mut a = driver.connect().unwrap();
    a.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();

    let mut stmt = PreparedStatement::new("INSERT INTO t VALUES (?)");
    stmt.execute(a.as_mut(), &[Value::Int(1)]).unwrap();
    drop(a);

    // fresh physical connection: new epoch, the old server-side id is gone,
    // the handle re-prepares without the caller noticing
    let mut b = driver.connect().unwrap();
    stmt.execute(b.as_mut(), &[Value::Int(2)]).unwrap();
    assert!(!stmt.is_fallback());
    let r = b.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    server.shutdown();
}

#[test]
fn prepared_loop_replays_through_chaos_drop() {
    let db = Database::new(EngineProfile::Postgres);
    {
        let mut s = db.connect();
        s.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    }
    // drop the connection under the worker partway through its loop; the
    // faulted statement never reached the engine, so replaying it after a
    // reconnect is exact-once
    let driver = ChaosDriver::new(
        Arc::new(LocalDriver::new(db.clone())),
        ChaosConfig {
            fault_rate: 0.0,
            schedule: vec![ScheduledFault {
                nth_op: 13,
                kind: FaultKind::Drop,
            }],
            ..ChaosConfig::default()
        },
    );

    let mut stmt = PreparedStatement::new("INSERT INTO t VALUES (?)");
    let mut conn = driver.connect().unwrap();
    let mut reconnects = 0;
    for i in 0..25i64 {
        loop {
            match stmt.execute(conn.as_mut(), &[Value::Int(i)]) {
                Ok(_) => break,
                Err(DbError::Connection(_)) => {
                    conn = driver.connect().unwrap();
                    reconnects += 1;
                    assert!(reconnects < 10, "reconnect storm");
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
    }
    assert!(reconnects >= 1, "the scheduled drop must have fired");
    let mut s = db.connect();
    let r = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(25));
}

#[test]
fn chaos_match_substring_scopes_prepared_execution() {
    let db = Database::new(EngineProfile::Postgres);
    {
        let mut s = db.connect();
        s.execute("CREATE TABLE hot (id INT PRIMARY KEY)").unwrap();
        s.execute("CREATE TABLE cold (id INT PRIMARY KEY)").unwrap();
    }
    // every eligible op faults, but only statements touching `hot` are
    // eligible — the prepared path must expose its SQL text to the scoper
    let driver = ChaosDriver::new(
        Arc::new(LocalDriver::new(db.clone())),
        ChaosConfig {
            fault_rate: 1.0,
            weights: dbcp::FaultWeights {
                connect_refused: 0,
                stmt_error: 1,
                latency: 0,
                drop: 0,
                ..dbcp::FaultWeights::default()
            },
            match_substring: Some("hot".into()),
            ..ChaosConfig::default()
        },
    );
    let mut conn = driver.connect().unwrap();
    let mut cold = PreparedStatement::new("INSERT INTO cold VALUES (?)");
    cold.execute(conn.as_mut(), &[Value::Int(1)]).unwrap();
    let mut hot = PreparedStatement::new("INSERT INTO hot VALUES (?)");
    let err = hot.execute(conn.as_mut(), &[Value::Int(1)]);
    assert!(matches!(err, Err(DbError::LockTimeout(_))), "{err:?}");
}
