//! # sqloop-bench — harness utilities for regenerating the paper's figures
//!
//! Shared plumbing for the `fig4_single_thread`, `fig5_scaling`,
//! `fig6_script_vs_sqloop` and `table1_terminations` binaries: environment
//! setup per engine profile, wall-clock timing, convergence-time extraction,
//! plain-text tables and CSV emission (written under `results/`).

#![warn(missing_docs)]

pub mod report;
pub mod runner;

pub use report::{write_csv, write_file, Table};
pub use runner::{convergence_time, env_with_graph, parse_args, time_it, BenchArgs, BenchEnv};
