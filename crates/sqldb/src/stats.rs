//! Execution statistics counters (lock-free, shared per database).

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative execution counters for one database instance.
///
/// Used by the benchmark harness to report engine-level effects (e.g. how
/// many more rows the MySQL profile's nested-loop joins touch than the
/// PostgreSQL profile's hash joins on the same workload).
#[derive(Debug, Default)]
pub struct Stats {
    statements: AtomicU64,
    rows_scanned: AtomicU64,
    rows_joined: AtomicU64,
    index_lookups: AtomicU64,
    lock_waits: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Statements executed.
    pub statements: u64,
    /// Rows produced by scans and joins.
    pub rows_scanned: u64,
    /// Row pairs examined by nested-loop joins.
    pub rows_joined: u64,
    /// Index probes performed.
    pub index_lookups: u64,
    /// Lock acquisitions that had to wait.
    pub lock_waits: u64,
}

impl Stats {
    /// Creates zeroed counters.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Records executed statements.
    pub fn add_statements(&self, n: u64) {
        self.statements.fetch_add(n, Ordering::Relaxed);
    }

    /// Records scanned/produced rows.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records nested-loop row-pair comparisons.
    pub fn add_rows_joined(&self, n: u64) {
        self.rows_joined.fetch_add(n, Ordering::Relaxed);
    }

    /// Records index probes.
    pub fn add_index_lookups(&self, n: u64) {
        self.index_lookups.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a lock acquisition that had to wait.
    pub fn add_lock_waits(&self, n: u64) {
        self.lock_waits.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_joined: self.rows_joined.load(Ordering::Relaxed),
            index_lookups: self.index_lookups.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Counter-wise difference (`self` must be the later snapshot).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            statements: self.statements - earlier.statements,
            rows_scanned: self.rows_scanned - earlier.rows_scanned,
            rows_joined: self.rows_joined - earlier.rows_joined,
            index_lookups: self.index_lookups - earlier.index_lookups,
            lock_waits: self.lock_waits - earlier.lock_waits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = Stats::new();
        s.add_statements(2);
        s.add_rows_scanned(10);
        s.add_index_lookups(3);
        let snap = s.snapshot();
        assert_eq!(snap.statements, 2);
        assert_eq!(snap.rows_scanned, 10);
        assert_eq!(snap.index_lookups, 3);
    }

    #[test]
    fn delta_since() {
        let s = Stats::new();
        s.add_statements(5);
        let a = s.snapshot();
        s.add_statements(3);
        let b = s.snapshot();
        assert_eq!(b.delta_since(&a).statements, 3);
    }

    #[test]
    fn stats_shared_across_threads() {
        let s = std::sync::Arc::new(Stats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.add_rows_scanned(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().rows_scanned, 4000);
    }
}
