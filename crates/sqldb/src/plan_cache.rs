//! Bounded LRU plan cache and prepared-statement support.
//!
//! A *plan* here is a parsed, dialect-validated statement AST together with
//! the set of catalog objects it depends on. Caching one amortizes the
//! lex/parse/validate work that otherwise repeats on every execution of an
//! identical statement — the dominant per-round overhead of SQLoop's
//! iterative hot loops, where the same Compute/Gather statements run
//! thousands of times.
//!
//! ## Keying and invalidation
//!
//! Entries are keyed by `(engine profile, SQL text)`. Each entry records,
//! per dependency table, the table's *catalog version* at prepare time plus
//! the global *views epoch*. DDL bumps versions:
//!
//! * `CREATE TABLE t` / `DROP TABLE t` bump `t`;
//! * `CREATE INDEX … ON t` / `DROP INDEX` bump the owning table;
//! * any view change bumps the views epoch (conservative: views can hide
//!   behind any table reference, so every entry is invalidated).
//!
//! A lookup that finds a version mismatch discards the entry (counted as an
//! invalidation) and reports a miss, so stale plans are re-prepared
//! transparently — they can never produce stale results, because binding
//! and execution always run against the live catalog.
//!
//! Only statements that can plausibly repeat — queries and DML — are
//! cached ([`is_cacheable`]). One-shot DDL/utility statements (CREATE/DROP,
//! TRUNCATE, transaction control) parse outside the cache: SQLoop's
//! schedulers mint round-unique msg-table names, and inserting those would
//! only churn the LRU without ever hitting.
//!
//! ## Parameters
//!
//! `?` placeholders parse to [`Expr::Param`] nodes. Execution substitutes
//! literal values into a clone of the cached AST
//! ([`substitute_params`]), so per-round literals (iteration numbers,
//! thresholds, priority bounds) don't defeat the cache.

use crate::ast::{Expr, Statement};
use crate::dialect_check::{for_each_expr, for_each_expr_mut};
use crate::error::{DbError, DbResult};
use crate::profile::EngineProfile;
use crate::value::Value;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default maximum number of cached plans per database.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 512;

/// A parsed, validated statement plus its invalidation fingerprint.
#[derive(Debug)]
pub struct CachedPlan {
    /// The parsed statement (canonical for this cache's profile).
    pub stmt: Statement,
    /// Number of `?` placeholders the statement carries.
    pub param_count: usize,
    /// `(table, version at prepare time)` for every referenced table.
    deps: Vec<(String, u64)>,
    /// Views epoch at prepare time.
    views_epoch: u64,
}

/// Point-in-time counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a fresh parse.
    pub misses: u64,
    /// Entries discarded to stay under capacity.
    pub evictions: u64,
    /// Entries discarded because DDL outdated them.
    pub invalidations: u64,
    /// Entries currently cached.
    pub entries: usize,
}

impl PlanCacheStats {
    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

/// Bounded LRU cache of parsed statements with DDL invalidation.
#[derive(Debug)]
pub struct PlanCache {
    entries: Mutex<HashMap<String, Entry>>,
    /// Per-table catalog version (absent = 0).
    versions: RwLock<HashMap<String, u64>>,
    views_epoch: AtomicU64,
    tick: AtomicU64,
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            versions: RwLock::new(HashMap::new()),
            views_epoch: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            capacity: AtomicUsize::new(capacity.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Cache key for `sql` under `profile`.
    pub fn key(profile: EngineProfile, sql: &str) -> String {
        format!("{profile}\u{0}{sql}")
    }

    /// Changes the capacity (evicting down immediately when shrinking).
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity.max(1), Ordering::Relaxed);
        let mut entries = self.entries.lock();
        self.evict_over_capacity(&mut entries);
    }

    /// Looks up a still-valid plan, refreshing its LRU stamp. Stale entries
    /// are discarded (counted as an invalidation). Misses are *not* counted
    /// here — the caller decides whether the statement was cacheable at all
    /// and calls [`PlanCache::count_miss`] for the ones that were.
    pub fn get(&self, key: &str) -> Option<Arc<CachedPlan>> {
        let mut entries = self.entries.lock();
        match entries.get_mut(key) {
            Some(e) if self.is_current(&e.plan) => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                let plan = e.plan.clone();
                drop(entries);
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::global().counter("sqldb.plan_cache.hit").inc();
                Some(plan)
            }
            Some(_) => {
                entries.remove(key);
                drop(entries);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                obs::global().counter("sqldb.plan_cache.invalidation").inc();
                None
            }
            None => None,
        }
    }

    /// Counts a hit served from a [`crate::StmtHandle`]'s own plan pointer
    /// (prepared execution validates the pinned plan without a map lookup).
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        obs::global().counter("sqldb.plan_cache.hit").inc();
    }

    /// Counts a lookup that required a fresh parse of a cacheable statement.
    pub fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        obs::global().counter("sqldb.plan_cache.miss").inc();
    }

    /// Wraps a parsed statement into a plan that never enters the cache
    /// (one-shot DDL/utility statements). The plan carries no dependencies,
    /// so a pinned handle only goes stale on a views-epoch change.
    pub fn uncached(&self, stmt: Statement) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            param_count: count_params(&stmt),
            deps: Vec::new(),
            views_epoch: self.views_epoch.load(Ordering::Relaxed),
            stmt,
        })
    }

    /// Inserts a freshly parsed statement, capturing its dependency
    /// versions, and returns the shared plan. Evicts least-recently-used
    /// entries when over capacity.
    pub fn insert(&self, key: String, stmt: Statement, deps: Vec<String>) -> Arc<CachedPlan> {
        let param_count = count_params(&stmt);
        let plan = {
            let versions = self.versions.read();
            Arc::new(CachedPlan {
                param_count,
                deps: deps
                    .into_iter()
                    .map(|t| {
                        let v = versions.get(&t).copied().unwrap_or(0);
                        (t, v)
                    })
                    .collect(),
                views_epoch: self.views_epoch.load(Ordering::Relaxed),
                stmt,
            })
        };
        let mut entries = self.entries.lock();
        entries.insert(
            key,
            Entry {
                plan: plan.clone(),
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
        self.evict_over_capacity(&mut entries);
        plan
    }

    fn evict_over_capacity(&self, entries: &mut HashMap<String, Entry>) {
        let cap = self.capacity.load(Ordering::Relaxed);
        while entries.len() > cap {
            let victim = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    entries.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    obs::global().counter("sqldb.plan_cache.eviction").inc();
                }
                None => break,
            }
        }
    }

    /// True while every dependency of `plan` is still at its prepare-time
    /// version and no view change happened since.
    pub fn is_current(&self, plan: &CachedPlan) -> bool {
        if plan.views_epoch != self.views_epoch.load(Ordering::Relaxed) {
            return false;
        }
        let versions = self.versions.read();
        plan.deps
            .iter()
            .all(|(t, v)| versions.get(t).copied().unwrap_or(0) == *v)
    }

    /// Records a schema change on `table`, outdating plans that depend on it.
    pub fn bump_table(&self, table: &str) {
        *self.versions.write().entry(table.to_owned()).or_insert(0) += 1;
    }

    /// Records a view change, outdating every cached plan.
    pub fn bump_views(&self) {
        self.views_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
        }
    }
}

/// True for statements worth caching: queries and DML repeat (iterative
/// round bodies, prepared handles); DDL, TRUNCATE and transaction control
/// are one-shot by nature — a repeated `CREATE TABLE` can only error.
pub fn is_cacheable(stmt: &Statement) -> bool {
    matches!(
        stmt,
        Statement::Select(_)
            | Statement::Insert(_)
            | Statement::Update(_)
            | Statement::Delete { .. }
    )
}

/// Number of `?` placeholders in `stmt` (max index + 1; the parser assigns
/// indexes in lexical order, so this equals the count).
pub fn count_params(stmt: &Statement) -> usize {
    let mut max: Option<usize> = None;
    for_each_expr(stmt, &mut |e| {
        if let Expr::Param(i) = e {
            max = Some(max.map_or(*i, |m| m.max(*i)));
        }
    });
    max.map_or(0, |m| m + 1)
}

/// Clones `stmt` with every `?` placeholder replaced by the matching
/// literal from `params`.
///
/// # Errors
/// Returns [`DbError::Invalid`] when `params` doesn't supply exactly the
/// placeholders the statement declares.
pub fn substitute_params(stmt: &Statement, params: &[Value]) -> DbResult<Statement> {
    let declared = count_params(stmt);
    if declared != params.len() {
        return Err(DbError::Invalid(format!(
            "statement declares {declared} parameter(s) but {} value(s) were supplied",
            params.len()
        )));
    }
    let mut out = stmt.clone();
    for_each_expr_mut(&mut out, &mut |e| {
        if let Expr::Param(i) = e {
            // bounds guaranteed by the arity check above
            if let Some(v) = params.get(*i) {
                *e = Expr::Literal(v.clone());
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn plan_of(cache: &PlanCache, sql: &str, deps: &[&str]) -> Arc<CachedPlan> {
        let key = PlanCache::key(EngineProfile::Postgres, sql);
        // mirrors Session::plan_for: a fresh parse of a cacheable statement
        cache.count_miss();
        cache.insert(
            key,
            parse_statement(sql).unwrap(),
            deps.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn hit_after_insert_miss_after_bump() {
        let cache = PlanCache::with_capacity(8);
        let sql = "SELECT a FROM t";
        let key = PlanCache::key(EngineProfile::Postgres, sql);
        assert!(cache.get(&key).is_none());
        plan_of(&cache, sql, &["t"]);
        assert!(cache.get(&key).is_some());
        cache.bump_table("t");
        assert!(cache.get(&key).is_none(), "bumped dep must invalidate");
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.misses, 1, "one fresh parse, the initial insert");
    }

    #[test]
    fn unrelated_bump_keeps_plan() {
        let cache = PlanCache::with_capacity(8);
        let sql = "SELECT a FROM t";
        let key = PlanCache::key(EngineProfile::Postgres, sql);
        plan_of(&cache, sql, &["t"]);
        cache.bump_table("other");
        assert!(cache.get(&key).is_some());
    }

    #[test]
    fn view_epoch_invalidates_everything() {
        let cache = PlanCache::with_capacity(8);
        let key = PlanCache::key(EngineProfile::Postgres, "SELECT a FROM t");
        plan_of(&cache, "SELECT a FROM t", &["t"]);
        cache.bump_views();
        assert!(cache.get(&key).is_none());
    }

    #[test]
    fn lru_eviction_under_tiny_cap() {
        let cache = PlanCache::with_capacity(2);
        plan_of(&cache, "SELECT 1", &[]);
        plan_of(&cache, "SELECT 2", &[]);
        // touch "SELECT 1" so "SELECT 2" is the LRU victim
        assert!(cache
            .get(&PlanCache::key(EngineProfile::Postgres, "SELECT 1"))
            .is_some());
        plan_of(&cache, "SELECT 3", &[]);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        assert!(cache
            .get(&PlanCache::key(EngineProfile::Postgres, "SELECT 1"))
            .is_some());
        assert!(cache
            .get(&PlanCache::key(EngineProfile::Postgres, "SELECT 2"))
            .is_none());
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let cache = PlanCache::with_capacity(4);
        for i in 0..4 {
            plan_of(&cache, &format!("SELECT {i}"), &[]);
        }
        cache.set_capacity(1);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 3);
    }

    #[test]
    fn ddl_is_not_cacheable_and_uncached_plans_stay_out() {
        assert!(is_cacheable(&parse_statement("SELECT 1").unwrap()));
        assert!(is_cacheable(&parse_statement("DELETE FROM t").unwrap()));
        assert!(!is_cacheable(
            &parse_statement("CREATE TABLE t (a INT)").unwrap()
        ));
        assert!(!is_cacheable(&parse_statement("DROP TABLE t").unwrap()));
        let cache = PlanCache::with_capacity(2);
        let plan = cache.uncached(parse_statement("DROP TABLE t").unwrap());
        assert!(cache.is_current(&plan), "no deps: only views outdate it");
        cache.bump_table("t");
        assert!(cache.is_current(&plan));
        cache.bump_views();
        assert!(!cache.is_current(&plan));
        assert_eq!(cache.stats().entries, 0, "uncached plans never enter");
    }

    #[test]
    fn param_counting_and_substitution() {
        let stmt = parse_statement("SELECT a FROM t WHERE a > ? AND b < ?").unwrap();
        assert_eq!(count_params(&stmt), 2);
        let out = substitute_params(&stmt, &[Value::Int(1), Value::Int(9)]).unwrap();
        assert_eq!(count_params(&out), 0);
        // arity mismatches are typed errors
        assert!(matches!(
            substitute_params(&stmt, &[Value::Int(1)]),
            Err(DbError::Invalid(_))
        ));
        assert!(matches!(
            substitute_params(&stmt, &[Value::Int(1), Value::Int(2), Value::Int(3)]),
            Err(DbError::Invalid(_))
        ));
    }

    #[test]
    fn profile_is_part_of_the_key() {
        assert_ne!(
            PlanCache::key(EngineProfile::Postgres, "SELECT 1"),
            PlanCache::key(EngineProfile::MySql, "SELECT 1")
        );
    }
}
