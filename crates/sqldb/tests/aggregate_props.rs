//! Property tests over the engine's aggregate semantics (NULL skipping,
//! COUNT(*) vs COUNT(expr), AVG over mixed types), against hand-computed
//! reference values, plus grouping correctness on random data.

use proptest::prelude::*;
use sqldb::{Database, EngineProfile, StmtOutput, Value};

fn load(values: &[(i64, Option<f64>)]) -> Database {
    let db = Database::new(EngineProfile::Postgres);
    let mut s = db.connect();
    s.execute("CREATE TABLE t (g INT, v FLOAT)").unwrap();
    for (g, v) in values {
        let v = match v {
            Some(f) => format!("{f}"),
            None => "NULL".to_string(),
        };
        s.execute(&format!("INSERT INTO t VALUES ({g}, {v})"))
            .unwrap();
    }
    db
}

fn query_rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let mut s = db.connect();
    match s.execute(sql).unwrap() {
        StmtOutput::Rows(r) => r.rows,
        _ => panic!("expected rows"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aggregates_match_reference(
        values in proptest::collection::vec(
            (0i64..5, proptest::option::of(-100.0f64..100.0)),
            0..60,
        )
    ) {
        let db = load(&values);
        let rows = query_rows(
            &db,
            "SELECT g, SUM(v), COUNT(*), COUNT(v), MIN(v), MAX(v), AVG(v) \
             FROM t GROUP BY g ORDER BY g",
        );
        // reference computation
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<i64, Vec<Option<f64>>> = BTreeMap::new();
        for (g, v) in &values {
            groups.entry(*g).or_default().push(*v);
        }
        prop_assert_eq!(rows.len(), groups.len());
        for (row, (g, vs)) in rows.iter().zip(&groups) {
            prop_assert_eq!(row[0].as_i64().unwrap(), *g);
            let non_null: Vec<f64> = vs.iter().filter_map(|v| *v).collect();
            // SUM: NULL when every input was NULL
            match &row[1] {
                Value::Null => prop_assert!(non_null.is_empty()),
                v => {
                    let expect: f64 = non_null.iter().sum();
                    prop_assert!((v.as_f64().unwrap() - expect).abs() < 1e-9);
                }
            }
            // COUNT(*) counts all rows, COUNT(v) non-NULL only
            prop_assert_eq!(row[2].as_i64().unwrap(), vs.len() as i64);
            prop_assert_eq!(row[3].as_i64().unwrap(), non_null.len() as i64);
            // MIN / MAX skip NULLs
            match &row[4] {
                Value::Null => prop_assert!(non_null.is_empty()),
                v => prop_assert_eq!(
                    v.as_f64().unwrap(),
                    non_null.iter().cloned().fold(f64::INFINITY, f64::min)
                ),
            }
            match &row[5] {
                Value::Null => prop_assert!(non_null.is_empty()),
                v => prop_assert_eq!(
                    v.as_f64().unwrap(),
                    non_null.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                ),
            }
            // AVG = SUM / COUNT over non-NULLs
            match &row[6] {
                Value::Null => prop_assert!(non_null.is_empty()),
                v => {
                    let expect = non_null.iter().sum::<f64>() / non_null.len() as f64;
                    prop_assert!((v.as_f64().unwrap() - expect).abs() < 1e-9);
                }
            }
        }
    }

    /// LEFT JOIN preserves every left row exactly once per match (or once
    /// with NULLs), regardless of profile.
    #[test]
    fn left_join_row_preservation(
        left in proptest::collection::vec(0i64..10, 1..25),
        right in proptest::collection::vec(0i64..10, 0..25),
    ) {
        for profile in EngineProfile::ALL {
            let db = Database::new(profile);
            let mut s = db.connect();
            s.execute("CREATE TABLE l (k INT)").unwrap();
            s.execute("CREATE TABLE r (k INT)").unwrap();
            for k in &left {
                s.execute(&format!("INSERT INTO l VALUES ({k})")).unwrap();
            }
            for k in &right {
                s.execute(&format!("INSERT INTO r VALUES ({k})")).unwrap();
            }
            let rows = match s
                .execute("SELECT l.k, r.k FROM l LEFT JOIN r ON l.k = r.k")
                .unwrap()
            {
                StmtOutput::Rows(r) => r.rows,
                _ => unreachable!(),
            };
            let expected: usize = left
                .iter()
                .map(|k| right.iter().filter(|r| *r == k).count().max(1))
                .sum();
            prop_assert_eq!(rows.len(), expected, "{}", profile);
            // unmatched rows carry NULL on the right
            for row in &rows {
                let lk = row[0].as_i64().unwrap();
                if right.contains(&lk) {
                    prop_assert_eq!(row[1].as_i64(), Some(lk));
                } else {
                    prop_assert!(row[1].is_null());
                }
            }
        }
    }

    /// UNION deduplicates exactly; UNION ALL preserves multiplicity.
    #[test]
    fn union_semantics(
        a in proptest::collection::vec(0i64..8, 0..20),
        b in proptest::collection::vec(0i64..8, 0..20),
    ) {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE a (k INT)").unwrap();
        s.execute("CREATE TABLE b (k INT)").unwrap();
        for k in &a {
            s.execute(&format!("INSERT INTO a VALUES ({k})")).unwrap();
        }
        for k in &b {
            s.execute(&format!("INSERT INTO b VALUES ({k})")).unwrap();
        }
        let all = query_rows(&db, "SELECT k FROM a UNION ALL SELECT k FROM b");
        prop_assert_eq!(all.len(), a.len() + b.len());
        let set = query_rows(&db, "SELECT k FROM a UNION SELECT k FROM b");
        let mut distinct: Vec<i64> = a.iter().chain(b.iter()).cloned().collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(set.len(), distinct.len());
    }
}
