//! Convergence progress sampling (paper §VI-A: "to report the results, we
//! sampled the entire dataset using a separate thread every 5 seconds").

use dbcp::Connection;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One progress observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSample {
    /// Time since the sampler started.
    pub elapsed: Duration,
    /// The scalar the progress query returned (e.g. sum of rank).
    pub value: f64,
    /// Bytes the engine's memory budget had charged when the sample was
    /// taken (`None` when the engine is remote and exposes no accounting).
    pub mem_bytes: Option<u64>,
}

/// Per-run fault-recovery counters: what the parallel engine had to do to
/// keep the query alive (all zero on a fault-free run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Compute/Gather tasks that failed on a transient error and were
    /// replayed (counted per replay dispatch, not per task).
    pub task_retries: u64,
    /// Worker threads that lost their engine connection and reopened it.
    pub worker_reconnects: u64,
    /// Task failures observed, transient or not (each replayed dispatch
    /// that fails again counts once more).
    pub task_failures: u64,
    /// Worker panics absorbed: caught at the task boundary, discovered at
    /// thread join, or dead-thread verdicts mid-task.
    pub worker_panics: u64,
    /// Stall verdicts: busy workers whose heartbeat went silent past the
    /// stall timeout and were abandoned.
    pub stalls: u64,
    /// Replacement workers spawned for abandoned (stalled or dead) ones.
    pub worker_replacements: u64,
    /// `true` when parallel execution was abandoned and the run finished
    /// on the single-threaded executor.
    pub downgraded: bool,
}

impl RecoveryCounters {
    /// True when nothing had to be recovered.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryCounters::default()
    }
}

impl std::fmt::Display for RecoveryCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} task failure(s), {} replay(s), {} reconnect(s)",
            self.task_failures, self.task_retries, self.worker_reconnects,
        )?;
        if self.worker_panics > 0 {
            write!(f, ", {} worker panic(s)", self.worker_panics)?;
        }
        if self.stalls > 0 {
            write!(f, ", {} stall(s)", self.stalls)?;
        }
        if self.worker_replacements > 0 {
            write!(f, ", {} worker(s) replaced", self.worker_replacements)?;
        }
        if self.downgraded {
            write!(f, ", downgraded to single-threaded")?;
        }
        Ok(())
    }
}

/// A background sampling thread holding its own engine connection.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<ProgressSample>>>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `query` (must return a single numeric value) every
    /// `interval` on `conn`. Failed samples (e.g. lock-timeout while writers
    /// are busy) are skipped, like a real monitoring thread would.
    pub fn start(mut conn: Box<dyn Connection>, query: String, interval: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(Vec::new()));
        let stop2 = stop.clone();
        let samples2 = samples.clone();
        let handle = std::thread::Builder::new()
            .name("sqloop-sampler".into())
            .spawn(move || {
                let start = Instant::now();
                let reg = obs::global();
                let failed = reg.counter("sqloop.sampler.failed_samples");
                let engine_mem = reg.gauge("sqldb.mem.bytes");
                let run_peak = reg.gauge("sqloop.mem.peak_bytes");
                // per-run high-water mark: the engine's own peak gauge is
                // process-lifetime, this one resets with each sampler
                run_peak.set(0);
                let mut peak: i64 = 0;
                while !stop2.load(Ordering::Relaxed) {
                    let mem = match engine_mem.get() {
                        0 => None,
                        n => Some(n.max(0) as u64),
                    };
                    if let Some(n) = mem {
                        let n = n.min(i64::MAX as u64) as i64;
                        if n > peak {
                            peak = n;
                            run_peak.set(n);
                        }
                    }
                    match conn.query(&query) {
                        Ok(result) => {
                            if let Some(v) = result.scalar().and_then(|v| v.as_f64()) {
                                samples2.lock().push(ProgressSample {
                                    elapsed: start.elapsed(),
                                    value: v,
                                    mem_bytes: mem,
                                });
                            } else {
                                failed.inc();
                            }
                        }
                        Err(_) => failed.inc(),
                    }
                    // sleep in small steps so stop() is responsive; cap each
                    // nap at the *remaining* time so sub-5ms intervals do not
                    // oversleep a full 5ms step
                    let deadline = Instant::now() + interval;
                    loop {
                        if stop2.load(Ordering::Relaxed) {
                            break;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        std::thread::sleep((deadline - now).min(Duration::from_millis(5)));
                    }
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            samples,
            handle: Some(handle),
        }
    }

    /// Stops the thread and returns the collected samples.
    pub fn stop(mut self) -> Vec<ProgressSample> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.samples.lock())
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbcp::{Driver, LocalDriver};
    use sqldb::{Database, EngineProfile};

    #[test]
    fn sampler_collects_monotone_progress() {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 0.0)").unwrap();
        let driver = LocalDriver::new(db);
        let sampler = Sampler::start(
            driver.connect().unwrap(),
            "SELECT SUM(v) FROM t".into(),
            Duration::from_millis(5),
        );
        for i in 1..=20 {
            s.execute(&format!("UPDATE t SET v = {i}.0")).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let samples = sampler.stop();
        assert!(samples.len() >= 2, "got {} samples", samples.len());
        // elapsed increases
        for w in samples.windows(2) {
            assert!(w[1].elapsed >= w[0].elapsed);
        }
        // values are within the written range
        assert!(samples.iter().all(|s| (0.0..=20.0).contains(&s.value)));
    }

    #[test]
    fn recovery_counters_render_and_compare() {
        let clean = RecoveryCounters::default();
        assert!(clean.is_clean());
        let busy = RecoveryCounters {
            task_retries: 4,
            worker_reconnects: 2,
            task_failures: 5,
            worker_panics: 1,
            stalls: 2,
            worker_replacements: 3,
            downgraded: true,
        };
        assert!(!busy.is_clean());
        let text = busy.to_string();
        assert!(text.contains("4 replay(s)"), "{text}");
        assert!(text.contains("2 reconnect(s)"), "{text}");
        assert!(text.contains("1 worker panic(s)"), "{text}");
        assert!(text.contains("2 stall(s)"), "{text}");
        assert!(text.contains("3 worker(s) replaced"), "{text}");
        assert!(text.contains("downgraded"), "{text}");
        let clean_text = clean.to_string();
        assert!(!clean_text.contains("downgraded"));
        // supervision counters stay silent on clean runs
        assert!(!clean_text.contains("panic"), "{clean_text}");
        assert!(!clean_text.contains("stall"), "{clean_text}");
        // a supervised recovery alone makes the run non-clean
        let stalled = RecoveryCounters {
            stalls: 1,
            worker_replacements: 1,
            ..RecoveryCounters::default()
        };
        assert!(!stalled.is_clean());
    }

    #[test]
    fn sampler_survives_bad_query() {
        let db = Database::new(EngineProfile::Postgres);
        let driver = LocalDriver::new(db);
        let sampler = Sampler::start(
            driver.connect().unwrap(),
            "SELECT broken FROM nowhere".into(),
            Duration::from_millis(2),
        );
        std::thread::sleep(Duration::from_millis(20));
        let samples = sampler.stop();
        assert!(samples.is_empty());
    }
}
