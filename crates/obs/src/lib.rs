//! Observability for the SQLoop reproduction: lock-free metrics
//! (counters/gauges/latency histograms behind a process-wide registry) and
//! per-run tracing (Compute/Gather/iteration spans plus retry/reconnect/
//! downgrade events) with text-timeline and JSON exporters.
//!
//! The crate has no heavyweight dependencies (only `parking_lot`) so every
//! layer of the stack — engine, connection pool, executors, CLI, benches —
//! can record into it. Design notes live in `DESIGN.md` §10.
//!
//! # Quick tour
//! ```
//! use obs::{EventKind, Span, SpanKind, SpanOutcome, TraceHandle};
//! use std::time::Duration;
//!
//! // Metrics: cheap atomic handles resolved once, updated lock-free.
//! let reg = obs::MetricsRegistry::new();
//! let hits = reg.counter("demo.cache.hits");
//! hits.inc();
//! reg.histogram("demo.op").observe(Duration::from_micros(120));
//! assert_eq!(reg.snapshot().counters["demo.cache.hits"], 1);
//!
//! // Tracing: spans/events recorded through a handle that is a no-op
//! // (no clock read, no lock) when tracing is off.
//! let trace = TraceHandle::new(true);
//! let start = trace.now_us();
//! trace.span(Span {
//!     kind: SpanKind::Compute,
//!     partition: Some(0),
//!     iteration: Some(1),
//!     worker: Some(0),
//!     attempt: 1,
//!     rows: 42,
//!     outcome: SpanOutcome::Ok,
//!     start_us: start,
//!     end_us: trace.now_us(),
//! });
//! trace.event(EventKind::Round, None, Some(1), "round complete");
//!
//! // Export: summarize, render a per-worker timeline, or emit JSON.
//! let data = trace.data().unwrap();
//! let summary = obs::TraceSummary::from_data(&data);
//! assert_eq!(summary.compute_spans, 1);
//! let doc = obs::trace_to_json(&data, None);
//! assert!(obs::json::parse(&doc).is_ok());
//! ```

#![warn(missing_docs)]

mod export;
pub mod json;
mod metrics;
mod trace;

pub use export::{
    prometheus_label_escape, prometheus_text, timeline, trace_to_json, validate_prometheus_text,
    validate_trace_json, write_trace_json, TraceSummary,
};
pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
    HISTOGRAM_BUCKETS,
};
pub use trace::{Event, EventKind, Span, SpanKind, SpanOutcome, TraceData, TraceHandle};
