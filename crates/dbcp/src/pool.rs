//! A small blocking connection pool.

use crate::driver::{Connection, Driver};
use parking_lot::{Condvar, Mutex};
use sqldb::{DbError, DbResult};
use std::sync::Arc;
use std::time::Duration;

struct PoolState {
    idle: Vec<Box<dyn Connection>>,
    total: usize,
}

/// A fixed-capacity connection pool over any [`Driver`].
///
/// SQLoop's thread pool opens one connection per worker; this pool exists
/// for applications embedding the middleware that want bounded connection
/// reuse instead.
pub struct Pool {
    driver: Arc<dyn Driver>,
    state: Mutex<PoolState>,
    available: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// A checked-out connection; returns to the pool on drop.
pub struct PooledConnection<'a> {
    pool: &'a Pool,
    conn: Option<Box<dyn Connection>>,
}

impl std::fmt::Debug for PooledConnection<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledConnection").finish_non_exhaustive()
    }
}

impl Pool {
    /// Creates a pool that will open at most `capacity` connections.
    pub fn new(driver: Arc<dyn Driver>, capacity: usize) -> Pool {
        Pool {
            driver,
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                total: 0,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Checks out a connection, opening one lazily while under capacity and
    /// otherwise waiting up to `timeout` for a return.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] on open failure or checkout timeout.
    pub fn get(&self, timeout: Duration) -> DbResult<PooledConnection<'_>> {
        let mut state = self.state.lock();
        loop {
            if let Some(conn) = state.idle.pop() {
                return Ok(PooledConnection {
                    pool: self,
                    conn: Some(conn),
                });
            }
            if state.total < self.capacity {
                state.total += 1;
                drop(state);
                match self.driver.connect() {
                    Ok(conn) => {
                        return Ok(PooledConnection {
                            pool: self,
                            conn: Some(conn),
                        })
                    }
                    Err(e) => {
                        self.state.lock().total -= 1;
                        self.available.notify_one();
                        return Err(e);
                    }
                }
            }
            if self
                .available
                .wait_for(&mut state, timeout)
                .timed_out()
            {
                return Err(DbError::Connection(
                    "timed out waiting for a pooled connection".into(),
                ));
            }
        }
    }

    /// Number of connections currently open (idle + checked out).
    pub fn open_connections(&self) -> usize {
        self.state.lock().total
    }

    fn put_back(&self, conn: Box<dyn Connection>) {
        self.state.lock().idle.push(conn);
        self.available.notify_one();
    }
}

impl PooledConnection<'_> {
    /// The underlying connection.
    pub fn conn(&mut self) -> &mut dyn Connection {
        self.conn.as_mut().expect("present until drop").as_mut()
    }
}

impl Drop for PooledConnection<'_> {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.pool.put_back(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::LocalDriver;
    use sqldb::{Database, EngineProfile, Value};

    fn pool(cap: usize) -> Pool {
        let db = Database::new(EngineProfile::Postgres);
        let mut s = db.connect();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        Pool::new(Arc::new(LocalDriver::new(db)), cap)
    }

    #[test]
    fn checkout_and_reuse() {
        let p = pool(2);
        {
            let mut c = p.get(Duration::from_secs(1)).unwrap();
            let r = c.conn().query("SELECT a FROM t").unwrap();
            assert_eq!(r.rows[0][0], Value::Int(1));
        }
        assert_eq!(p.open_connections(), 1);
        let _c1 = p.get(Duration::from_secs(1)).unwrap();
        let _c2 = p.get(Duration::from_secs(1)).unwrap();
        assert_eq!(p.open_connections(), 2);
    }

    #[test]
    fn capacity_enforced_with_timeout() {
        let p = pool(1);
        let _held = p.get(Duration::from_secs(1)).unwrap();
        let err = p.get(Duration::from_millis(50));
        assert!(matches!(err, Err(DbError::Connection(_))));
    }

    #[test]
    fn waiting_checkout_succeeds_after_return() {
        let p = Arc::new(pool(1));
        let held = p.get(Duration::from_secs(1)).unwrap();
        let p2 = p.clone();
        let h = std::thread::spawn(move || {
            let mut c = p2.get(Duration::from_secs(5)).unwrap();
            c.conn().query("SELECT a FROM t").unwrap().rows.len()
        });
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert_eq!(h.join().unwrap(), 1);
    }
}
