//! TCP server exposing a database over the wire protocol.
//!
//! One OS thread per client connection, each owning one engine session —
//! matching the paper's observation that "for each new connection … the
//! database system spawns a new process to accommodate the additional
//! computational needs" (§I).

use crate::wire::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, MAGIC,
};
use sqldb::{Database, DbError, DbResult, StmtOutput};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running database server.
///
/// Dropping the handle signals shutdown; the listener thread exits after the
/// next accept wake-up and client threads exit when their peers disconnect.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `db` to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] when binding fails.
    pub fn bind(db: Database, addr: &str) -> DbResult<Server> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| DbError::Connection(format!("bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| DbError::Connection(format!("local_addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let accept_thread = std::thread::Builder::new()
            .name("dbcp-accept".into())
            .spawn(move || accept_loop(listener, db, flag))
            .map_err(|e| DbError::Connection(format!("spawn: {e}")))?;
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the accept loop to finish.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // poke the listener so accept() returns
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(listener: TcpListener, db: Database, shutdown: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let db = db.clone();
                let _ = std::thread::Builder::new()
                    .name("dbcp-conn".into())
                    .spawn(move || {
                        let _ = serve_client(stream, db);
                    });
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn serve_client(mut stream: TcpStream, db: Database) -> DbResult<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| DbError::Connection(format!("nodelay: {e}")))?;
    // handshake
    let mut magic = [0u8; 2];
    stream
        .read_exact(&mut magic)
        .map_err(|e| DbError::Connection(format!("handshake read: {e}")))?;
    if magic != MAGIC {
        return Err(DbError::Connection("bad protocol magic".into()));
    }
    stream
        .write_all(&MAGIC)
        .map_err(|e| DbError::Connection(format!("handshake write: {e}")))?;

    let mut session = db.connect();
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return Ok(()), // peer went away; session drop rolls back
        };
        let request = decode_request(frame)?;
        let response = match request {
            Request::Close => return Ok(()),
            Request::Execute(sql) => Response::from_result(session.execute(&sql)),
            Request::Batch(stmts) => {
                let mut items = Vec::with_capacity(stmts.len());
                let mut failed = None;
                for s in &stmts {
                    match session.execute(s) {
                        Ok(out) => items.push(Response::from_result(Ok(out))),
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                match failed {
                    Some(e) => Response::Error(e),
                    None => Response::BatchResults(items),
                }
            }
            Request::Begin => Response::from_result(session.begin().map(|()| StmtOutput::Done)),
            Request::Commit => Response::from_result(session.commit().map(|()| StmtOutput::Done)),
            Request::Rollback => {
                Response::from_result(session.rollback().map(|()| StmtOutput::Done))
            }
            Request::SetIsolation(level) => {
                session.set_isolation(level);
                Response::Done
            }
            Request::Profile => Response::ProfileIs(db.profile()),
        };
        write_frame(&mut stream, &encode_response(&response))?;
    }
}
