//! Graceful-drain integration tests: `Server::shutdown` must let in-flight
//! statements finish and flush their responses, close idle connections
//! promptly, and abandon (but count) handlers that outlive the drain
//! deadline — all over the real wire protocol.

use dbcp::{Driver, Server, ServerConfig, TcpDriver};
use sqldb::{Database, EngineProfile};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// These tests assert on process-global obs counters and gauges, so they
/// must not interleave with each other.
static SERIAL: Mutex<()> = Mutex::new(());

/// Polls `cond` for up to five seconds.
fn eventually(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

fn in_flight() -> i64 {
    obs::global()
        .gauge("dbcp.server.in_flight_statements")
        .get()
}

fn abandoned() -> u64 {
    obs::global().counter("dbcp.server.drain_abandoned").get()
}

#[test]
fn shutdown_waits_for_inflight_statement_and_flushes_its_response() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let db = Database::new(EngineProfile::Postgres);
    let server = Server::bind_with(db, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();

    let mut setup = driver.connect().unwrap();
    setup.execute("CREATE TABLE t (a INT)").unwrap();
    drop(setup);

    // one long batch = one in-flight wire request that takes a while
    let batch: Vec<String> = (0..40_000)
        .map(|i| format!("INSERT INTO t VALUES ({i})"))
        .collect();
    let writer = {
        let driver = driver.clone();
        std::thread::spawn(move || {
            let mut c = driver.connect().unwrap();
            c.execute_batch(&batch)
        })
    };
    assert!(
        eventually(|| in_flight() >= 1 || writer.is_finished()),
        "batch never reached the server"
    );

    let abandoned_before = abandoned();
    server.shutdown();

    // the drain must have carried the batch to completion and flushed the
    // BatchResults response before the handler thread was joined
    let result = writer.join().unwrap();
    assert!(
        result.is_ok(),
        "in-flight batch must complete through the drain, got {result:?}"
    );
    assert_eq!(
        abandoned() - abandoned_before,
        0,
        "nothing should be abandoned when work fits the drain budget"
    );
}

#[test]
fn shutdown_closes_idle_connections_without_burning_the_drain_budget() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let db = Database::new(EngineProfile::Postgres);
    let cfg = ServerConfig {
        drain_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(db, "127.0.0.1:0", cfg).unwrap();
    let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();

    // a connection that proved it works, then went idle
    let mut idle = driver.connect().unwrap();
    idle.execute("CREATE TABLE t (a INT)").unwrap();

    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "an idle connection must close within a poll tick, not hold the \
         30 s drain budget ({:?})",
        started.elapsed()
    );

    // the drained server is really gone for this client
    assert!(idle.execute("INSERT INTO t VALUES (1)").is_err());
}

#[test]
fn drain_deadline_abandons_a_stuck_handler_and_counts_it() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let db = Database::new(EngineProfile::Postgres);
    let cfg = ServerConfig {
        // far smaller than the batch below needs
        drain_timeout: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let server = Server::bind_with(db, "127.0.0.1:0", cfg).unwrap();
    let driver = TcpDriver::connect(&server.addr().to_string()).unwrap();

    let mut setup = driver.connect().unwrap();
    setup.execute("CREATE TABLE t (a INT)").unwrap();
    drop(setup);

    let batch: Vec<String> = (0..100_000)
        .map(|i| format!("INSERT INTO t VALUES ({i})"))
        .collect();
    let writer = {
        let driver = driver.clone();
        std::thread::spawn(move || {
            let mut c = driver.connect().unwrap();
            // outcome is deliberately unasserted: the abandoned handler
            // keeps running detached, so the batch may still succeed
            let _ = c.execute_batch(&batch);
        })
    };
    assert!(
        eventually(|| in_flight() >= 1 || writer.is_finished()),
        "batch never reached the server"
    );

    let abandoned_before = abandoned();
    let started = Instant::now();
    server.shutdown();
    let waited = started.elapsed();
    // either the deadline fired and the handler was abandoned (counted), or
    // — on a very fast machine — the batch beat the deadline; both are
    // correct drains, but a shutdown hanging for the whole batch is not
    assert!(
        waited < Duration::from_secs(20),
        "shutdown must respect its 10 ms drain deadline, waited {waited:?}"
    );
    if abandoned() > abandoned_before {
        // the stuck handler was visibly given up on, not silently dropped
        assert!(abandoned() - abandoned_before >= 1);
    }
    let _ = writer.join();
}
