//! Byte-accounted memory budget shared by every table of a database.
//!
//! Accounting is approximate but conservative and self-consistent: the
//! same estimator ([`row_bytes`]) is used for charges and refunds, so the
//! tracked total returns to zero when all tracked rows are gone. The
//! budget is enforced at the charge sites in `storage.rs` (row inserts
//! and in-place growth) and `exec.rs` (intermediate materialization), and
//! a failed charge surfaces as [`DbError::BudgetExceeded`] so the
//! statement rolls back atomically and refunds everything it charged.

use crate::error::{DbError, DbResult};
use crate::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed per-row bookkeeping overhead (slot option + vec headers).
const ROW_OVERHEAD: u64 = 24;

/// Estimated heap bytes held by one row.
pub fn row_bytes(row: &[Value]) -> u64 {
    let mut n = ROW_OVERHEAD;
    for v in row {
        n += match v {
            Value::Null => 8,
            Value::Int(_) | Value::Float(_) => 16,
            Value::Bool(_) => 8,
            Value::Text(s) => 24 + s.len() as u64,
        };
    }
    n
}

/// Rough estimate for `nrows` materialized rows of width `arity`, used
/// where walking every value would cost more than the materialization
/// itself (joins, WHERE outputs).
pub fn approx_rows_bytes(nrows: usize, arity: usize) -> u64 {
    (nrows as u64) * (ROW_OVERHEAD + 16 * arity as u64)
}

/// An atomic byte-accounting budget with an optional hard limit.
///
/// `limit == 0` means unlimited (charges always succeed but are still
/// tracked, so peak usage is observable even without enforcement).
#[derive(Debug)]
pub struct MemoryBudget {
    used: AtomicU64,
    peak: AtomicU64,
    limit: AtomicU64,
    used_gauge: Arc<obs::Gauge>,
    peak_gauge: Arc<obs::Gauge>,
    exceeded: Arc<obs::Counter>,
}

impl Default for MemoryBudget {
    fn default() -> MemoryBudget {
        let reg = obs::global();
        MemoryBudget {
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            limit: AtomicU64::new(0),
            used_gauge: reg.gauge("sqldb.mem.bytes"),
            peak_gauge: reg.gauge("sqldb.mem.peak_bytes"),
            exceeded: reg.counter("sqldb.mem.budget_exceeded"),
        }
    }
}

impl MemoryBudget {
    /// An unlimited budget.
    pub fn new() -> MemoryBudget {
        MemoryBudget::default()
    }

    /// Sets (or clears, with `None`/`Some(0)`) the hard byte limit.
    pub fn set_limit(&self, limit: Option<u64>) {
        self.limit.store(limit.unwrap_or(0), Ordering::Relaxed);
    }

    /// The hard limit, if one is set.
    pub fn limit(&self) -> Option<u64> {
        match self.limit.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Bytes currently charged.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of charged bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Charges `bytes` against the budget.
    ///
    /// # Errors
    /// Returns [`DbError::BudgetExceeded`] (and leaves the accounting
    /// unchanged) when the charge would cross the limit.
    pub fn charge(&self, bytes: u64) -> DbResult<()> {
        let limit = self.limit.load(Ordering::Relaxed);
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if limit != 0 && now > limit {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            self.exceeded.inc();
            return Err(DbError::BudgetExceeded(format!(
                "memory limit {limit} bytes: {prev} in use, {bytes} more requested"
            )));
        }
        self.note_usage(now);
        Ok(())
    }

    /// Charges without enforcing the limit (undo paths must never fail).
    pub fn charge_unchecked(&self, bytes: u64) {
        let now = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.note_usage(now);
    }

    /// Returns `bytes` to the budget (saturating at zero).
    pub fn refund(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::Relaxed);
        // a saturation here means charge/refund sites are unbalanced
        debug_assert!(prev >= bytes, "memory budget refund underflow");
        if prev < bytes {
            self.used.store(0, Ordering::Relaxed);
        }
        self.used_gauge
            .set(self.used.load(Ordering::Relaxed).min(i64::MAX as u64) as i64);
    }

    /// Charges `bytes` and returns a guard that refunds them on drop —
    /// used for transient materializations (join/filter outputs) whose
    /// lifetime is one statement.
    ///
    /// # Errors
    /// Returns [`DbError::BudgetExceeded`] when the charge would cross
    /// the limit.
    pub fn reserve(self: &Arc<Self>, bytes: u64) -> DbResult<Reservation> {
        self.charge(bytes)?;
        Ok(Reservation {
            budget: self.clone(),
            bytes,
        })
    }

    fn note_usage(&self, now: u64) {
        self.used_gauge.set(now.min(i64::MAX as u64) as i64);
        let mut peak = self.peak.load(Ordering::Relaxed);
        while now > peak {
            match self
                .peak
                .compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak_gauge.set(now.min(i64::MAX as u64) as i64);
                    break;
                }
                Err(p) => peak = p,
            }
        }
    }
}

/// A charge that refunds itself when dropped.
#[derive(Debug)]
pub struct Reservation {
    budget: Arc<MemoryBudget>,
    bytes: u64,
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.refund(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_tracks_usage_and_peak() {
        let b = MemoryBudget::new();
        b.charge(100).unwrap();
        b.charge(50).unwrap();
        assert_eq!(b.used(), 150);
        b.refund(120);
        assert_eq!(b.used(), 30);
        assert_eq!(b.peak(), 150);
        assert_eq!(b.limit(), None);
    }

    #[test]
    fn limit_enforced_and_failed_charge_leaves_accounting_intact() {
        let b = MemoryBudget::new();
        b.set_limit(Some(100));
        b.charge(80).unwrap();
        let err = b.charge(30);
        assert!(matches!(err, Err(DbError::BudgetExceeded(_))), "{err:?}");
        assert_eq!(b.used(), 80);
        // raising the limit lets the same charge through
        b.set_limit(Some(200));
        b.charge(30).unwrap();
        assert_eq!(b.used(), 110);
    }

    #[test]
    fn reservation_refunds_on_drop() {
        let b = Arc::new(MemoryBudget::new());
        b.set_limit(Some(100));
        {
            let _r = b.reserve(90).unwrap();
            assert_eq!(b.used(), 90);
            assert!(b.reserve(20).is_err());
        }
        assert_eq!(b.used(), 0);
        assert!(b.reserve(100).is_ok());
    }

    #[test]
    fn row_bytes_estimates() {
        let small = row_bytes(&[Value::Int(1), Value::Null]);
        let big = row_bytes(&[Value::Int(1), Value::Text("x".repeat(1000))]);
        assert!(big > small + 900);
        assert_eq!(approx_rows_bytes(10, 2), 10 * (24 + 32));
    }

    #[test]
    fn concurrent_charges_balance() {
        let b = Arc::new(MemoryBudget::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        b.charge(16).unwrap();
                        b.refund(16);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.used(), 0);
    }
}
