//! Reading and writing edge lists on disk (SNAP-compatible format).
//!
//! The paper's datasets come from the SNAP collection as `src<TAB>dst` text
//! files with `#` comment headers; these helpers let the stand-in graphs be
//! exported in the same format (e.g. to compare against other systems) and
//! real SNAP files be imported when available.

use crate::graph::Graph;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes `graph` as a SNAP-style edge list (tab separated, `#` header).
///
/// # Errors
/// Propagates I/O errors.
pub fn save_edge_list(graph: &Graph, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# Directed graph: {} ", path.display())?;
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.node_count(),
        graph.edge_count()
    )?;
    writeln!(w, "# FromNodeId\tToNodeId")?;
    for &(s, d) in graph.edges() {
        writeln!(w, "{s}\t{d}")?;
    }
    w.flush()
}

/// Reads a SNAP-style edge list (`#` comments skipped; tab, comma or space
/// separated).
///
/// # Errors
/// Propagates I/O errors; malformed lines become
/// [`std::io::ErrorKind::InvalidData`].
pub fn load_edge_list(path: &Path) -> std::io::Result<Graph> {
    let text = std::fs::read_to_string(path)?;
    Graph::from_csv(&text).map_err(|m| std::io::Error::new(std::io::ErrorKind::InvalidData, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::web_graph;

    #[test]
    fn roundtrip_via_disk() {
        let g = web_graph(100, 3, 9);
        let dir = std::env::temp_dir().join("graphgen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("web.txt");
        save_edge_list(&g, &path).unwrap();
        let back = load_edge_list(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snap_header_is_skipped_on_load() {
        let dir = std::env::temp_dir().join("graphgen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.txt");
        std::fs::write(&path, "# Nodes: 3 Edges: 2\n0\t1\n1\t2\n").unwrap();
        let g = load_edge_list(&path).unwrap();
        assert_eq!(g.edge_count(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_file_is_invalid_data() {
        let dir = std::env::temp_dir().join("graphgen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "0\tnot-a-node\n").unwrap();
        let err = load_edge_list(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }
}
