//! Offline stand-in for the `rand` crate: a deterministic SplitMix64-based
//! `StdRng` plus the `Rng`/`SeedableRng` subset this workspace uses
//! (`gen_range` over integer ranges, `gen_bool`).
//!
//! Not cryptographic and not bit-compatible with upstream `rand`; streams
//! are deterministic per seed, which is all the graph generators need.

use std::ops::Range;

/// Low-level uniform generator.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen_range`] can produce.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[range.start, range.end)`.
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on an empty range");
                let span = range.end.abs_diff(range.start) as u64;
                let off = rng.next_u64() % span;
                range.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, range: Range<f64>) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
