//! No-op derive macros for the offline `serde` stand-in: the workspace only
//! decorates types with `#[derive(Serialize, Deserialize)]` and never
//! serializes through a format crate, so empty expansions are sufficient.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
