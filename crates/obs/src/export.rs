//! Trace exporters: a per-run summary, a per-worker text [`timeline`]
//! (Compute/Gather Gantt rows), and a machine-readable JSON document.

use crate::json;
use crate::metrics::RegistrySnapshot;
use crate::trace::{EventKind, SpanKind, SpanOutcome, TraceData};
use std::fmt::Write as _;
use std::path::Path;

/// Aggregated view of one run's trace, cheap enough to embed in an
/// execution report.
///
/// `compute_spans`/`gather_spans` count *successful* task completions, so
/// on a parallel run they equal the scheduler's Compute/Gather totals;
/// failed attempts are counted separately in `failed_spans`.
///
/// # Examples
/// ```
/// use obs::{Span, SpanKind, SpanOutcome, TraceHandle, TraceSummary};
///
/// let trace = TraceHandle::new(true);
/// trace.span(Span {
///     kind: SpanKind::Compute,
///     partition: Some(0),
///     iteration: Some(1),
///     worker: Some(0),
///     attempt: 1,
///     rows: 10,
///     outcome: SpanOutcome::Ok,
///     start_us: 0,
///     end_us: 50,
/// });
/// let summary = TraceSummary::from_data(&trace.data().unwrap());
/// assert_eq!(summary.compute_spans, 1);
/// assert_eq!(summary.failed_spans, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// All recorded spans, any kind or outcome.
    pub spans: u64,
    /// Successful Compute task spans.
    pub compute_spans: u64,
    /// Successful Gather task spans.
    pub gather_spans: u64,
    /// Single-threaded iteration spans.
    pub iteration_spans: u64,
    /// Task attempts that ended in failure.
    pub failed_spans: u64,
    /// All recorded events, any kind.
    pub events: u64,
    /// Task replay dispatches.
    pub retry_events: u64,
    /// Worker engine reconnects.
    pub reconnect_events: u64,
    /// Downgrades to the single-threaded executor.
    pub downgrade_events: u64,
    /// Trace length in µs.
    pub duration_us: u64,
}

impl TraceSummary {
    /// Summarizes recorded trace data.
    pub fn from_data(data: &TraceData) -> TraceSummary {
        let mut s = TraceSummary {
            spans: data.spans.len() as u64,
            events: data.events.len() as u64,
            duration_us: data.duration_us,
            ..TraceSummary::default()
        };
        for span in &data.spans {
            match (span.kind, span.outcome) {
                (_, SpanOutcome::Failed) => s.failed_spans += 1,
                (SpanKind::Compute, SpanOutcome::Ok) => s.compute_spans += 1,
                (SpanKind::Gather, SpanOutcome::Ok) => s.gather_spans += 1,
                (SpanKind::Iteration, SpanOutcome::Ok) => s.iteration_spans += 1,
            }
        }
        for event in &data.events {
            match event.kind {
                EventKind::Retry => s.retry_events += 1,
                EventKind::Reconnect => s.reconnect_events += 1,
                EventKind::Downgrade => s.downgrade_events += 1,
                _ => {}
            }
        }
        s
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} span(s) ({} compute, {} gather, {} iteration, {} failed), \
             {} event(s) ({} retry, {} reconnect, {} downgrade) over {:.3} ms",
            self.spans,
            self.compute_spans,
            self.gather_spans,
            self.iteration_spans,
            self.failed_spans,
            self.events,
            self.retry_events,
            self.reconnect_events,
            self.downgrade_events,
            self.duration_us as f64 / 1000.0,
        )
    }
}

/// Renders per-worker Gantt rows over the trace: one row per worker thread,
/// `C` marking Compute work, `G` Gather, `x` a failed attempt, `·` idle.
/// Single-threaded iteration spans render on a row of their own as `I`.
/// Returns an empty vector for an empty trace.
///
/// # Examples
/// ```
/// use obs::{Span, SpanKind, SpanOutcome, TraceHandle};
///
/// let trace = TraceHandle::new(true);
/// trace.span(Span {
///     kind: SpanKind::Compute, partition: Some(0), iteration: None,
///     worker: Some(0), attempt: 1, rows: 1, outcome: SpanOutcome::Ok,
///     start_us: 0, end_us: 500,
/// });
/// let mut data = trace.data().unwrap();
/// data.duration_us = 1000;
/// let rows = obs::timeline(&data, 10);
/// assert_eq!(rows.len(), 1);
/// assert!(rows[0].contains("CCCCC"), "{}", rows[0]);
/// ```
pub fn timeline(data: &TraceData, width: usize) -> Vec<String> {
    let width = width.max(8);
    let total = data.duration_us.max(1);
    let mut workers: Vec<u32> = data.spans.iter().filter_map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    let has_iterations = data.spans.iter().any(|s| s.worker.is_none());
    let mut rows = Vec::new();
    let mut render_row = |label: String, filter: &dyn Fn(&crate::trace::Span) -> bool| {
        let mut cells = vec!['·'; width];
        for span in data.spans.iter().filter(|s| filter(s)) {
            let glyph = match (span.outcome, span.kind) {
                (SpanOutcome::Failed, _) => 'x',
                (_, SpanKind::Compute) => 'C',
                (_, SpanKind::Gather) => 'G',
                (_, SpanKind::Iteration) => 'I',
            };
            let a = (span.start_us.min(total) as usize * width / total as usize).min(width - 1);
            let b = (span.end_us.min(total) as usize * width / total as usize).min(width - 1);
            for cell in &mut cells[a..=b] {
                // failures keep their mark even when later work shares a cell
                if *cell != 'x' {
                    *cell = glyph;
                }
            }
        }
        rows.push(format!("{label} |{}|", cells.iter().collect::<String>()));
    };
    for w in workers {
        render_row(format!("worker {w:>2}"), &move |s| s.worker == Some(w));
    }
    if has_iterations {
        render_row("loop     ".into(), &|s| s.worker.is_none());
    }
    rows
}

/// Serializes a trace (plus an optional per-run metrics snapshot) as a JSON
/// document. The schema is stable: `version`, `duration_us`, `spans[]`,
/// `events[]`, and optionally `metrics{counters, gauges}`.
///
/// # Examples
/// ```
/// use obs::TraceHandle;
///
/// let trace = TraceHandle::new(true);
/// trace.event(obs::EventKind::Retry, Some(1), None, "replay");
/// let doc = obs::trace_to_json(&trace.data().unwrap(), None);
/// let parsed = obs::json::parse(&doc).unwrap();
/// assert_eq!(parsed.get("version").and_then(|v| v.as_u64()), Some(1));
/// assert_eq!(parsed.get("events").unwrap().as_array().unwrap().len(), 1);
/// ```
pub fn trace_to_json(data: &TraceData, metrics: Option<&RegistrySnapshot>) -> String {
    // spans arrive in cross-thread mutex order, which varies run to run;
    // sort on stable keys so exports diff cleanly in CI snapshots
    let mut spans: Vec<&crate::trace::Span> = data.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_us, s.end_us, s.worker, s.partition, s.kind.label()));
    let mut events: Vec<&crate::trace::Event> = data.events.iter().collect();
    events.sort_by(|a, b| {
        (a.at_us, a.kind.label(), &a.detail).cmp(&(b.at_us, b.kind.label(), &b.detail))
    });
    let mut out = String::with_capacity(256 + data.spans.len() * 128);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"version\": 1,");
    let _ = writeln!(out, "  \"duration_us\": {},", data.duration_us);
    out.push_str("  \"spans\": [");
    for (i, s) in spans.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"kind\": \"{}\", \"partition\": {}, \"iteration\": {}, \
             \"worker\": {}, \"attempt\": {}, \"rows\": {}, \"outcome\": \"{}\", \
             \"start_us\": {}, \"end_us\": {}}}",
            s.kind.label(),
            opt_num(s.partition.map(u64::from)),
            opt_num(s.iteration),
            opt_num(s.worker.map(u64::from)),
            s.attempt,
            s.rows,
            s.outcome.label(),
            s.start_us,
            s.end_us,
        );
    }
    out.push_str("\n  ],\n  \"events\": [");
    for (i, e) in events.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"kind\": \"{}\", \"at_us\": {}, \"partition\": {}, \
             \"iteration\": {}, \"detail\": \"{}\"}}",
            e.kind.label(),
            e.at_us,
            opt_num(e.partition.map(u64::from)),
            opt_num(e.iteration),
            json::escape(&e.detail),
        );
    }
    out.push_str("\n  ]");
    if let Some(m) = metrics {
        out.push_str(",\n  \"metrics\": {\n    \"counters\": {");
        for (i, (k, v)) in m.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "      \"{}\": {v}", json::escape(k));
        }
        out.push_str("\n    },\n    \"gauges\": {");
        for (i, (k, v)) in m.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "      \"{}\": {v}", json::escape(k));
        }
        out.push_str("\n    }\n  }");
    }
    out.push_str("\n}\n");
    out
}

fn opt_num(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |n| n.to_string())
}

/// Writes [`trace_to_json`] output to `path`.
///
/// # Errors
/// Filesystem errors creating or writing the file.
pub fn write_trace_json(
    path: &Path,
    data: &TraceData,
    metrics: Option<&RegistrySnapshot>,
) -> std::io::Result<()> {
    std::fs::write(path, trace_to_json(data, metrics))
}

/// Parses a JSON trace document and returns its summary-relevant counts:
/// `(spans by kind+outcome label, events by kind label)`. Used by tests and
/// CI to validate emitted trace files.
///
/// # Errors
/// Parse errors, a missing/wrong `version`, or missing `spans`/`events`
/// arrays.
#[allow(clippy::type_complexity)]
pub fn validate_trace_json(
    text: &str,
) -> Result<
    (
        std::collections::BTreeMap<String, u64>,
        std::collections::BTreeMap<String, u64>,
    ),
    String,
> {
    let doc = json::parse(text)?;
    if doc.get("version").and_then(|v| v.as_u64()) != Some(1) {
        return Err("missing or unsupported trace version".into());
    }
    let spans = doc
        .get("spans")
        .and_then(|s| s.as_array())
        .ok_or("missing spans array")?;
    let events = doc
        .get("events")
        .and_then(|s| s.as_array())
        .ok_or("missing events array")?;
    let mut span_counts = std::collections::BTreeMap::new();
    for s in spans {
        let kind = s.get("kind").and_then(|k| k.as_str()).ok_or("span kind")?;
        let outcome = s
            .get("outcome")
            .and_then(|k| k.as_str())
            .ok_or("span outcome")?;
        *span_counts.entry(format!("{kind}:{outcome}")).or_insert(0) += 1;
    }
    let mut event_counts = std::collections::BTreeMap::new();
    for e in events {
        let kind = e.get("kind").and_then(|k| k.as_str()).ok_or("event kind")?;
        *event_counts.entry(kind.to_owned()).or_insert(0) += 1;
    }
    Ok((span_counts, event_counts))
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

/// Maps a dotted metric name (`sqldb.plan_cache.hit`) to a Prometheus
/// metric name (`sqldb_plan_cache_hit`): dots become underscores and any
/// other character outside `[a-zA-Z0-9_:]` is dropped to an underscore.
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a label value per the Prometheus text format (backslash, quote
/// and newline).
pub fn prometheus_label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`RegistrySnapshot`] in the Prometheus text exposition format.
///
/// Counters get a `_total` suffix, histograms expand to cumulative
/// `_bucket{le="..."}` series (upper bounds in microseconds, matching the
/// registry's power-of-two buckets) plus `_sum` (µs) and `_count`. Series
/// are emitted in sorted name order, so the dump is byte-stable for a
/// given snapshot.
///
/// # Examples
/// ```
/// let reg = obs::MetricsRegistry::new();
/// reg.counter("demo.hits").add(3);
/// let text = obs::prometheus_text(&reg.snapshot());
/// assert!(text.contains("demo_hits_total 3"));
/// assert!(obs::validate_prometheus_text(&text).is_ok());
/// ```
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p}_total counter");
        let _ = writeln!(out, "{p}_total {v}");
    }
    for (name, v) in &snap.gauges {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p} gauge");
        let _ = writeln!(out, "{p} {v}");
    }
    for (name, h) in &snap.histograms {
        let p = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {p}_us histogram");
        let mut cumulative = 0u64;
        for (i, b) in h.buckets.iter().enumerate() {
            cumulative += b;
            if i + 1 == h.buckets.len() {
                let _ = writeln!(out, "{p}_us_bucket{{le=\"+Inf\"}} {cumulative}");
            } else {
                // bucket i holds observations in [2^(i-1), 2^i) µs
                // (bucket 0 is exactly 0 µs), so its inclusive upper
                // bound is 2^i - 1
                let le = (1u64 << i) - 1;
                let _ = writeln!(out, "{p}_us_bucket{{le=\"{le}\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{p}_us_sum {}", h.total_us);
        let _ = writeln!(out, "{p}_us_count {}", h.count);
    }
    out
}

/// Validates a Prometheus text dump: every non-comment line must be
/// `name{labels} value`, names must be legal, and no series (name plus
/// label set) may repeat. Returns the number of samples.
///
/// # Errors
/// A message naming the first offending line.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut seen = std::collections::BTreeSet::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // split the series key (name + optional {labels}) from the value
        let (series, value) = match line.rfind('}') {
            Some(close) => {
                let rest = line[close + 1..].trim();
                (&line[..=close], rest)
            }
            None => match line.split_once(' ') {
                Some((s, v)) => (s, v.trim()),
                None => return Err(format!("line {}: no value: {line:?}", lineno + 1)),
            },
        };
        let name_part = series.split('{').next().unwrap_or("");
        if name_part.is_empty()
            || !name_part.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
        {
            return Err(format!(
                "line {}: bad metric name {name_part:?}",
                lineno + 1
            ));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!(
                "line {}: unterminated labels: {line:?}",
                lineno + 1
            ));
        }
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {}: bad value {value:?}", lineno + 1));
        }
        if !seen.insert(series.to_owned()) {
            return Err(format!("line {}: duplicate series {series:?}", lineno + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Span, TraceHandle};

    fn sample_trace() -> TraceData {
        let t = TraceHandle::new(true);
        for (worker, kind, outcome) in [
            (0, SpanKind::Compute, SpanOutcome::Ok),
            (1, SpanKind::Gather, SpanOutcome::Ok),
            (0, SpanKind::Compute, SpanOutcome::Failed),
        ] {
            t.span(Span {
                kind,
                partition: Some(2),
                iteration: Some(1),
                worker: Some(worker),
                attempt: 1,
                rows: 7,
                outcome,
                start_us: 10,
                end_us: 20,
            });
        }
        t.event(EventKind::Retry, Some(2), Some(1), "replay \"quoted\"");
        t.event(EventKind::Reconnect, None, None, "worker 0");
        t.data().unwrap()
    }

    #[test]
    fn summary_counts_by_kind_and_outcome() {
        let s = TraceSummary::from_data(&sample_trace());
        assert_eq!(s.spans, 3);
        assert_eq!(s.compute_spans, 1);
        assert_eq!(s.gather_spans, 1);
        assert_eq!(s.failed_spans, 1);
        assert_eq!(s.retry_events, 1);
        assert_eq!(s.reconnect_events, 1);
        assert_eq!(s.downgrade_events, 0);
        let text = s.to_string();
        assert!(text.contains("1 retry"), "{text}");
    }

    #[test]
    fn json_roundtrip_validates() {
        let data = sample_trace();
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter("a.b").add(3);
        let doc = trace_to_json(&data, Some(&reg.snapshot()));
        let (spans, events) = validate_trace_json(&doc).unwrap();
        assert_eq!(spans["compute:ok"], 1);
        assert_eq!(spans["compute:failed"], 1);
        assert_eq!(spans["gather:ok"], 1);
        assert_eq!(events["retry"], 1);
        assert_eq!(events["reconnect"], 1);
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("a.b"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );
        // the escaped detail string survives the roundtrip
        assert!(parsed
            .get("events")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|e| e.get("detail").and_then(|d| d.as_str()) == Some("replay \"quoted\"")));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = TraceHandle::new(true);
        let doc = trace_to_json(&t.data().unwrap(), None);
        let (spans, events) = validate_trace_json(&doc).unwrap();
        assert!(spans.is_empty());
        assert!(events.is_empty());
        assert!(timeline(&t.data().unwrap(), 40).is_empty());
    }

    #[test]
    fn timeline_renders_one_row_per_worker() {
        let mut data = sample_trace();
        data.duration_us = 40;
        let rows = timeline(&data, 20);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("worker  0"));
        assert!(rows[1].starts_with("worker  1"));
        // worker 0 had a failed attempt overlapping its compute cell
        assert!(rows[0].contains('x'), "{}", rows[0]);
        assert!(rows[1].contains('G'), "{}", rows[1]);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_trace_json("{}").is_err());
        assert!(validate_trace_json("not json").is_err());
        assert!(validate_trace_json(r#"{"version": 2, "spans": [], "events": []}"#).is_err());
    }

    #[test]
    fn json_export_is_order_stable() {
        // identical span sets recorded in different arrival orders must
        // serialize identically (satellite: stable CI diffs)
        let record = |order: &[usize]| {
            let t = TraceHandle::new(true);
            let spans = [
                (0u32, 10u64, SpanKind::Compute),
                (1, 10, SpanKind::Gather),
                (0, 30, SpanKind::Compute),
            ];
            for &i in order {
                let (worker, start, kind) = spans[i];
                t.span(Span {
                    kind,
                    partition: Some(i as u32),
                    iteration: Some(1),
                    worker: Some(worker),
                    attempt: 1,
                    rows: 1,
                    outcome: SpanOutcome::Ok,
                    start_us: start,
                    end_us: start + 5,
                });
            }
            t.event(EventKind::Round, None, Some(1), "b");
            t.event(EventKind::Round, None, Some(1), "a");
            let mut data = t.data().unwrap();
            data.duration_us = 100; // pin the wall-clock-derived field
            let mut events = std::mem::take(&mut data.events);
            for e in &mut events {
                e.at_us = 50;
            }
            data.events = events;
            trace_to_json(&data, None)
        };
        assert_eq!(record(&[0, 1, 2]), record(&[2, 1, 0]));
    }

    #[test]
    fn prometheus_dump_is_valid_and_complete() {
        let reg = crate::metrics::MetricsRegistry::new();
        reg.counter("sqldb.plan_cache.hit").add(7);
        reg.gauge("dbcp.server.open_connections").set(2);
        reg.histogram("sqldb.stmt.select")
            .observe(std::time::Duration::from_micros(100));
        let text = prometheus_text(&reg.snapshot());
        let samples = validate_prometheus_text(&text).unwrap();
        // 1 counter + 1 gauge + 24 buckets + sum + count
        assert_eq!(samples, 1 + 1 + crate::metrics::HISTOGRAM_BUCKETS + 2);
        assert!(text.contains("sqldb_plan_cache_hit_total 7"));
        assert!(text.contains("dbcp_server_open_connections 2"));
        assert!(text.contains("sqldb_stmt_select_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("sqldb_stmt_select_us_sum 100"));
        assert!(text.contains("sqldb_stmt_select_us_count 1"));
        // byte-stable for the same snapshot
        assert_eq!(text, prometheus_text(&reg.snapshot()));
    }

    #[test]
    fn prometheus_validator_catches_malformed_lines() {
        assert!(validate_prometheus_text("ok_name 1\n").is_ok());
        assert!(validate_prometheus_text("9bad 1\n").is_err());
        assert!(validate_prometheus_text("name notanumber\n").is_err());
        assert!(validate_prometheus_text("dup 1\ndup 2\n").is_err());
        assert!(validate_prometheus_text("x{le=\"1\"} 1\nx{le=\"2\"} 1\n").is_ok());
        assert!(validate_prometheus_text("x{le=\"1\"} 1\nx{le=\"1\"} 2\n").is_err());
        assert!(validate_prometheus_text("justaname\n").is_err());
        assert_eq!(validate_prometheus_text("# just a comment\n"), Ok(0));
    }

    #[test]
    fn label_escape_handles_sql_text() {
        let nasty = "SELECT \"a\\b\"\nFROM t";
        let esc = prometheus_label_escape(nasty);
        assert!(!esc.contains('\n'));
        assert_eq!(esc, "SELECT \\\"a\\\\b\\\"\\nFROM t");
    }
}
