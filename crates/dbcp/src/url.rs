//! Connection-URL parsing: `tcp://host:port` and `local://<profile>`.
//!
//! The paper's middleware connects to a target engine given only "the URL
//! and the port number" (§IV-A); this module is that entry point.

use crate::client::TcpDriver;
use crate::driver::{Driver, LocalDriver};
use sqldb::{Database, DbError, DbResult, EngineProfile};
use std::sync::Arc;

/// A parsed connection URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectionUrl {
    /// `tcp://host:port` — a remote wire-protocol server.
    Tcp {
        /// `host:port` string.
        addr: String,
    },
    /// `local://postgres|mysql|mariadb` — a fresh in-process engine.
    Local {
        /// Requested engine profile.
        profile: EngineProfile,
    },
}

impl ConnectionUrl {
    /// Parses a URL string.
    ///
    /// # Errors
    /// Returns [`DbError::Connection`] for unknown schemes or malformed
    /// authority parts.
    ///
    /// # Examples
    /// ```
    /// use dbcp::ConnectionUrl;
    /// let u = ConnectionUrl::parse("tcp://127.0.0.1:5433")?;
    /// assert!(matches!(u, ConnectionUrl::Tcp { .. }));
    /// # Ok::<(), sqldb::DbError>(())
    /// ```
    pub fn parse(url: &str) -> DbResult<ConnectionUrl> {
        let (scheme, rest) = url
            .split_once("://")
            .ok_or_else(|| DbError::Connection(format!("missing scheme in url '{url}'")))?;
        match scheme {
            "tcp" | "sqloop" => {
                if rest.is_empty() || !rest.contains(':') {
                    return Err(DbError::Connection(format!(
                        "tcp url must be host:port, got '{rest}'"
                    )));
                }
                Ok(ConnectionUrl::Tcp {
                    addr: rest.to_owned(),
                })
            }
            "local" => {
                let profile = EngineProfile::parse(rest).ok_or_else(|| {
                    DbError::Connection(format!("unknown engine profile '{rest}'"))
                })?;
                Ok(ConnectionUrl::Local { profile })
            }
            other => Err(DbError::Connection(format!("unknown scheme '{other}'"))),
        }
    }
}

/// Builds a driver from a URL. `local://` URLs create a *fresh, empty*
/// in-process database (use [`LocalDriver::new`] to share an existing one).
///
/// # Errors
/// Returns [`DbError::Connection`] on parse or connect failure.
pub fn driver_for_url(url: &str) -> DbResult<Arc<dyn Driver>> {
    match ConnectionUrl::parse(url)? {
        ConnectionUrl::Tcp { addr } => Ok(Arc::new(TcpDriver::connect(&addr)?)),
        ConnectionUrl::Local { profile } => Ok(Arc::new(LocalDriver::new(Database::new(profile)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tcp() {
        assert_eq!(
            ConnectionUrl::parse("tcp://10.0.0.1:5433").unwrap(),
            ConnectionUrl::Tcp {
                addr: "10.0.0.1:5433".into()
            }
        );
        // the paper-flavored scheme alias
        assert!(matches!(
            ConnectionUrl::parse("sqloop://db.example.com:9000").unwrap(),
            ConnectionUrl::Tcp { .. }
        ));
    }

    #[test]
    fn parse_local() {
        assert_eq!(
            ConnectionUrl::parse("local://mysql").unwrap(),
            ConnectionUrl::Local {
                profile: EngineProfile::MySql
            }
        );
    }

    #[test]
    fn bad_urls_rejected() {
        assert!(ConnectionUrl::parse("nourl").is_err());
        assert!(ConnectionUrl::parse("ftp://x:1").is_err());
        assert!(ConnectionUrl::parse("tcp://noport").is_err());
        assert!(ConnectionUrl::parse("local://oracle").is_err());
    }

    #[test]
    fn local_driver_from_url() {
        let d = driver_for_url("local://mariadb").unwrap();
        assert_eq!(d.profile(), EngineProfile::MariaDb);
        let mut c = d.connect().unwrap();
        c.execute("CREATE TABLE t (a INT)").unwrap();
    }
}
