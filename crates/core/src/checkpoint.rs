//! Durable checkpoint/resume for iterative runs (DESIGN.md §11).
//!
//! A checkpoint is a [`LoopSnapshot`]: the loop's partition (or CTE) tables
//! as [`TableDump`]s plus the scheduler state needed to continue — round
//! counter, per-partition compute counts and message-sequence watermarks,
//! worker jitter seeds — bound to a **fingerprint** of the query, execution
//! mode and partition count so a checkpoint can never silently resume a
//! *different* run.
//!
//! Crash consistency comes from four properties (see DESIGN.md §15 for the
//! crash-point analysis):
//!
//! 1. every snapshot file ends in an FNV-64 checksum over its full content,
//!    so truncation or corruption is detected, never misread;
//! 2. snapshot and manifest writes go to a `.tmp` sibling first and are
//!    moved into place with an atomic rename, with full fsync discipline —
//!    file contents *and* the parent directory after every rename — so a
//!    power cut can neither tear a published file nor lose the rename;
//! 3. the manifest (`MANIFEST.json`) names the latest complete snapshot and
//!    is only written *after* that snapshot is durable; rotated snapshots
//!    are deleted only *after* the manifest durably stops naming them;
//! 4. recovery ([`load_latest_recovering`]) never trusts a single file: a
//!    corrupt snapshot is quarantined to `<name>.corrupt` and resume falls
//!    back through older manifest generations — and, when the manifest
//!    itself is unreadable or names only missing files, through
//!    orphaned-but-valid `*.sqloop` files found by directory scan.
//!
//! All file I/O is routed through the [`CkptIo`] VFS so the identical
//! sequence runs against the real filesystem or the
//! [`TornFs`](crate::ckpt_io::TornFs) storage
//! fault injector (`ckpt_io.rs`); the crash-matrix harness in
//! `tests/tests/crash_matrix.rs` enumerates every crash point of the
//! write → manifest → rotate sequence in all four execution modes.
//!
//! Checkpoints are only taken at **quiesce points** (no task in flight, no
//! unread message table), which is why the snapshot does not need message
//! tables or partial-task state — the partition tables alone are the loop
//! state. See `parallel.rs` for how each scheduler reaches that point.

use crate::ckpt_io::{CkptIo, RealFs};
use crate::common::run;
use crate::error::{SqloopError, SqloopResult};
use crate::grammar::IterativeCte;
use crate::parallel_sql::value_literal;
use dbcp::Connection;
use obs::EventKind;
use sqldb::snapshot::TableDump;
use sqldb::{Column, DataType, Value};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Where and how often to checkpoint (see [`crate::SqloopConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the snapshot files and `MANIFEST.json`
    /// (created on first write).
    pub dir: PathBuf,
    /// Checkpoint every `interval` completed rounds (≥ 1).
    pub interval: u64,
    /// Snapshots retained after rotation (≥ 1).
    pub keep_last: usize,
}

impl CheckpointConfig {
    /// Checkpoints into `dir` every round, keeping the last two snapshots.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            interval: 1,
            keep_last: 2,
        }
    }

    /// Builder: checkpoint every `interval` rounds.
    pub fn every(mut self, interval: u64) -> CheckpointConfig {
        self.interval = interval;
        self
    }
}

/// Per-partition scheduler state carried through a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartSnap {
    /// Compute tasks this partition has completed (drives `ITERATIONS`
    /// caps).
    pub computes: u64,
    /// Next message-table sequence number (watermark), so a resumed run
    /// never reuses a message-table name from before the crash.
    pub msg_seq: u64,
    /// The partition held an unconsumed delta at checkpoint time.
    pub pending: bool,
    /// Strict G→C alternation state (see `parallel.rs`).
    pub prefer_compute: bool,
}

/// Everything needed to continue an interrupted iterative run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSnapshot {
    /// [`run_fingerprint`] of the query/mode/partitions that wrote this.
    pub fingerprint: u64,
    /// Execution-mode label ("Single", "Sync", "Async", "AsyncP").
    pub mode: String,
    /// Completed rounds/iterations at the time of the snapshot.
    pub round: u64,
    /// Rows changed by the last completed round.
    pub last_change: u64,
    /// Per-partition scheduler state (one entry per partition; a single-
    /// threaded run has none).
    pub parts: Vec<PartSnap>,
    /// Worker jitter seeds in effect (reproduced on resume so retry backoff
    /// stays deterministic).
    pub seeds: Vec<u64>,
    /// The loop's tables: partition tables (parallel) or the CTE table plus
    /// optional delta snapshot (single-threaded).
    pub tables: Vec<TableDump>,
}

const SNAPSHOT_HEADER: &str = "sqloop-checkpoint v1";
const MANIFEST_NAME: &str = "MANIFEST.json";

/// Binds a checkpoint to the run that wrote it: FNV-64 over the parsed
/// query, the execution-mode label, and the partition count. A resume with
/// a different query, mode, or partitioning is a typed error, not a wrong
/// answer.
pub fn run_fingerprint(cte: &IterativeCte, mode_label: &str, partitions: usize) -> u64 {
    fnv64(format!("{cte:?}|{mode_label}|{partitions}").as_bytes())
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn ckpt_err(what: impl Into<String>) -> SqloopError {
    SqloopError::Checkpoint(what.into())
}

impl LoopSnapshot {
    /// Serializes the snapshot: a line-oriented header, length-prefixed
    /// [`TableDump`] blobs, and a trailing FNV-64 checksum line.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(SNAPSHOT_HEADER);
        out.push('\n');
        let _ = writeln!(out, "fingerprint {:016x}", self.fingerprint);
        let _ = writeln!(out, "mode {}", self.mode);
        let _ = writeln!(out, "round {}", self.round);
        let _ = writeln!(out, "last_change {}", self.last_change);
        let _ = writeln!(out, "parts {}", self.parts.len());
        for p in &self.parts {
            let _ = writeln!(
                out,
                "part {} {} {} {}",
                p.computes,
                p.msg_seq,
                u8::from(p.pending),
                u8::from(p.prefer_compute)
            );
        }
        let seeds = self
            .seeds
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "seeds {}{}{}",
            self.seeds.len(),
            if self.seeds.is_empty() { "" } else { " " },
            seeds
        );
        let _ = writeln!(out, "tables {}", self.tables.len());
        for t in &self.tables {
            let blob = t.encode();
            let _ = writeln!(out, "table {}", blob.len());
            out.push_str(&blob);
        }
        let _ = writeln!(out, "checksum {:016x}", fnv64(out.as_bytes()));
        out
    }

    /// Parses and checksum-verifies a snapshot produced by
    /// [`LoopSnapshot::encode`].
    ///
    /// # Errors
    /// [`SqloopError::Checkpoint`] on any header, framing, or checksum
    /// problem — a torn or corrupted snapshot never decodes.
    pub fn decode(text: &str) -> SqloopResult<LoopSnapshot> {
        let body_end = text
            .rfind("checksum ")
            .ok_or_else(|| ckpt_err("snapshot has no checksum line"))?;
        let (body, tail) = text.split_at(body_end);
        let declared = tail
            .strip_prefix("checksum ")
            .and_then(|t| u64::from_str_radix(t.trim_end_matches('\n'), 16).ok())
            .ok_or_else(|| ckpt_err("snapshot has a malformed checksum line"))?;
        let actual = fnv64(body.as_bytes());
        if declared != actual {
            return Err(ckpt_err(format!(
                "snapshot checksum mismatch (file says {declared:016x}, content hashes to {actual:016x}) — \
                 the file is truncated or corrupted"
            )));
        }

        fn next_line<'a>(rest: &mut &'a str) -> SqloopResult<&'a str> {
            let nl = rest
                .find('\n')
                .ok_or_else(|| ckpt_err("snapshot truncated"))?;
            let (line, r) = rest.split_at(nl);
            *rest = &r[1..];
            Ok(line)
        }
        let mut rest = body;
        if next_line(&mut rest)? != SNAPSHOT_HEADER {
            return Err(ckpt_err("unsupported snapshot header"));
        }
        let field = |line: &str, key: &str| -> SqloopResult<String> {
            line.strip_prefix(key)
                .and_then(|l| l.strip_prefix(' '))
                .map(str::to_owned)
                .ok_or_else(|| ckpt_err(format!("snapshot missing `{key}` field")))
        };
        let fingerprint = u64::from_str_radix(&field(next_line(&mut rest)?, "fingerprint")?, 16)
            .map_err(|_| ckpt_err("bad fingerprint"))?;
        let mode = field(next_line(&mut rest)?, "mode")?;
        let round = field(next_line(&mut rest)?, "round")?
            .parse::<u64>()
            .map_err(|_| ckpt_err("bad round"))?;
        let last_change = field(next_line(&mut rest)?, "last_change")?
            .parse::<u64>()
            .map_err(|_| ckpt_err("bad last_change"))?;
        let n_parts = field(next_line(&mut rest)?, "parts")?
            .parse::<usize>()
            .map_err(|_| ckpt_err("bad parts count"))?;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let line = field(next_line(&mut rest)?, "part")?;
            let mut it = line.split(' ');
            let mut num = || -> SqloopResult<u64> {
                it.next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| ckpt_err("bad part line"))
            };
            parts.push(PartSnap {
                computes: num()?,
                msg_seq: num()?,
                pending: num()? != 0,
                prefer_compute: num()? != 0,
            });
        }
        let seeds_line = field(next_line(&mut rest)?, "seeds")?;
        let mut seed_it = seeds_line.split(' ');
        let n_seeds = seed_it
            .next()
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| ckpt_err("bad seeds line"))?;
        let seeds: Vec<u64> = seed_it
            .map(|v| v.parse::<u64>().map_err(|_| ckpt_err("bad seed value")))
            .collect::<SqloopResult<_>>()?;
        if seeds.len() != n_seeds {
            return Err(ckpt_err("seed count mismatch"));
        }
        let n_tables = field(next_line(&mut rest)?, "tables")?
            .parse::<usize>()
            .map_err(|_| ckpt_err("bad tables count"))?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let len = field(next_line(&mut rest)?, "table")?
                .parse::<usize>()
                .map_err(|_| ckpt_err("bad table length"))?;
            if rest.len() < len {
                return Err(ckpt_err("snapshot truncated inside a table dump"));
            }
            let (blob, r) = rest.split_at(len);
            rest = r;
            tables.push(
                TableDump::decode(blob)
                    .map_err(|e| ckpt_err(format!("embedded table dump: {e}")))?,
            );
        }
        if !rest.is_empty() {
            return Err(ckpt_err("trailing data in snapshot"));
        }
        Ok(LoopSnapshot {
            fingerprint,
            mode,
            round,
            last_change,
            parts,
            seeds,
            tables,
        })
    }
}

/// Writes rotating, manifest-tracked snapshots into one directory.
#[derive(Debug)]
pub struct Checkpointer {
    config: CheckpointConfig,
    io: Arc<dyn CkptIo>,
    /// File names of complete snapshots, oldest first.
    history: Vec<String>,
    /// Path of the most recently written snapshot.
    last_path: Option<PathBuf>,
}

impl Checkpointer {
    /// Prepares the checkpoint directory (creating it if needed) and loads
    /// any existing manifest history so rotation spans process restarts.
    ///
    /// # Errors
    /// [`SqloopError::Checkpoint`] when the directory cannot be created.
    pub fn new(config: CheckpointConfig) -> SqloopResult<Checkpointer> {
        Checkpointer::with_io(config, Arc::new(RealFs))
    }

    /// As [`Checkpointer::new`], routing all file I/O through `io` — the
    /// real filesystem in production, [`crate::TornFs`] under fault
    /// injection.
    ///
    /// # Errors
    /// [`SqloopError::Checkpoint`] when the directory cannot be created.
    pub fn with_io(config: CheckpointConfig, io: Arc<dyn CkptIo>) -> SqloopResult<Checkpointer> {
        io.create_dir_all(&config.dir).map_err(|e| {
            ckpt_err(format!(
                "cannot create checkpoint dir {}: {e}",
                config.dir.display()
            ))
        })?;
        let history = match read_manifest(&*io, &config.dir.join(MANIFEST_NAME)) {
            Ok(m) => m.history,
            Err(_) => Vec::new(),
        };
        Ok(Checkpointer {
            config,
            io,
            history,
            last_path: None,
        })
    }

    /// True when `completed_rounds` is a checkpoint boundary.
    pub fn due(&self, completed_rounds: u64) -> bool {
        completed_rounds > 0 && completed_rounds.is_multiple_of(self.config.interval.max(1))
    }

    /// The most recently written snapshot path, if any.
    pub fn last_path(&self) -> Option<&Path> {
        self.last_path.as_deref()
    }

    /// Durably writes `snap`: snapshot file first (tmp + fsync + rename +
    /// dir fsync), then the manifest pointing at it (same discipline), then
    /// rotation of snapshots beyond `keep_last` — deletion strictly *after*
    /// the manifest durably stops naming the dropped generations, so no
    /// crash point can leave the manifest pointing only at deleted files.
    /// Returns the snapshot path.
    ///
    /// # Errors
    /// [`SqloopError::Checkpoint`] on any I/O failure.
    pub fn save(&mut self, snap: &LoopSnapshot) -> SqloopResult<PathBuf> {
        let started = Instant::now();
        let file_name = format!("ckpt_r{:08}.sqloop", snap.round);
        let path = self.config.dir.join(&file_name);
        let encoded = snap.encode();
        let bytes = encoded.len() as u64;
        write_atomic(&*self.io, &path, &encoded)?;
        if self.history.last().map(String::as_str) != Some(file_name.as_str()) {
            self.history.retain(|h| h != &file_name);
            self.history.push(file_name.clone());
        }
        let mut dropped = Vec::new();
        while self.history.len() > self.config.keep_last.max(1) {
            dropped.push(self.history.remove(0));
        }
        let manifest = render_manifest(snap, &file_name, &self.history);
        write_atomic(&*self.io, &self.config.dir.join(MANIFEST_NAME), &manifest)?;
        for old in dropped {
            // best-effort: a crash between the manifest write and this
            // delete merely leaves an orphaned (still valid) snapshot
            let _ = self.io.remove_file(&self.config.dir.join(old));
        }
        let reg = obs::global();
        reg.counter("sqloop.checkpoint.writes").inc();
        reg.counter("sqloop.checkpoint.bytes").add(bytes);
        reg.histogram("sqloop.checkpoint.write_latency")
            .observe(started.elapsed());
        self.last_path = Some(path.clone());
        Ok(path)
    }
}

/// Tmp + rename with full fsync discipline: the payload is synced before
/// the rename and the parent directory after it, so a power cut can never
/// publish a torn file or un-publish a completed rename.
fn write_atomic(io: &dyn CkptIo, path: &Path, contents: &str) -> SqloopResult<()> {
    let tmp = path.with_extension("tmp");
    let err = |e: std::io::Error| ckpt_err(format!("writing {}: {e}", path.display()));
    let fsyncs = obs::global().counter("sqloop.ckpt.fsyncs");
    io.write_file(&tmp, contents.as_bytes()).map_err(err)?;
    io.sync_file(&tmp).map_err(err)?;
    fsyncs.inc();
    io.rename(&tmp, path).map_err(err)?;
    io.sync_dir(path.parent().unwrap_or(Path::new(".")))
        .map_err(err)?;
    fsyncs.inc();
    Ok(())
}

fn render_manifest(snap: &LoopSnapshot, latest: &str, history: &[String]) -> String {
    let hist = history
        .iter()
        .map(|h| format!("\"{}\"", obs::json::escape(h)))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"version\": 1, \"latest\": \"{}\", \"round\": {}, \"mode\": \"{}\", \
         \"fingerprint\": \"{:016x}\", \"history\": [{}]}}\n",
        obs::json::escape(latest),
        snap.round,
        obs::json::escape(&snap.mode),
        snap.fingerprint,
        hist
    )
}

struct Manifest {
    latest: String,
    history: Vec<String>,
}

fn read_manifest(io: &dyn CkptIo, path: &Path) -> SqloopResult<Manifest> {
    let text = io
        .read_to_string(path)
        .map_err(|e| ckpt_err(format!("cannot read manifest {}: {e}", path.display())))?;
    let doc = obs::json::parse(&text).map_err(|e| {
        ckpt_err(format!(
            "manifest {} is not valid JSON: {e}",
            path.display()
        ))
    })?;
    let latest = doc
        .get("latest")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ckpt_err("manifest has no `latest` entry"))?
        .to_owned();
    let history = doc
        .get("history")
        .and_then(|v| v.as_array())
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect()
        })
        .unwrap_or_default();
    Ok(Manifest { latest, history })
}

/// A snapshot recovered by [`load_latest_recovering`], with the story of
/// how it was found.
#[derive(Debug, Clone)]
pub struct RecoveredSnapshot {
    /// The loaded (checksum-verified) snapshot.
    pub snapshot: LoopSnapshot,
    /// Newer candidates that had to be skipped (corrupt or missing) before
    /// this one loaded; `0` on a clean first-try load.
    pub fallbacks: u64,
    /// Corrupt snapshot files moved aside to `<name>.corrupt`.
    pub quarantined: Vec<PathBuf>,
    /// Human-readable recovery note (`None` when the load was clean) —
    /// surfaced on [`crate::ExecutionReport::recovery_note`].
    pub note: Option<String>,
}

/// Loads the most recent snapshot reachable from `path`, which may be a
/// checkpoint directory, a `MANIFEST.json`, or a snapshot file directly.
///
/// Convenience wrapper over [`load_latest_recovering`] that discards the
/// recovery details.
///
/// # Errors
/// [`SqloopError::Checkpoint`] when nothing loadable (and checksum-valid)
/// is found.
pub fn load_latest(path: &Path) -> SqloopResult<LoopSnapshot> {
    load_latest_recovering(path).map(|r| r.snapshot)
}

/// [`load_latest`] with corruption fallback: a corrupt newest snapshot is
/// quarantined to `<name>.corrupt` and the load falls back through older
/// manifest generations; when the manifest itself is torn, unreadable, or
/// names only missing files, orphaned `*.sqloop` files found by directory
/// scan are tried newest-first. Bumps `sqloop.ckpt.corrupt_detected` per
/// corrupt file and `sqloop.ckpt.fallback_loads` when the load did not
/// succeed on the first candidate.
///
/// # Errors
/// [`SqloopError::Checkpoint`] when no candidate loads — never a wrong
/// answer: every returned snapshot passed its checksum.
pub fn load_latest_recovering(path: &Path) -> SqloopResult<RecoveredSnapshot> {
    load_latest_recover_with(&RealFs, path)
}

/// [`load_latest_recovering`] over an explicit [`CkptIo`] (fault-injection
/// harnesses pass [`crate::TornFs`]).
///
/// # Errors
/// As [`load_latest_recovering`].
pub fn load_latest_recover_with(io: &dyn CkptIo, path: &Path) -> SqloopResult<RecoveredSnapshot> {
    let is_manifest = path.file_name().and_then(|n| n.to_str()) == Some(MANIFEST_NAME);
    if !path.is_dir() && !is_manifest {
        // explicit snapshot file: load exactly that file, no fallback and
        // no quarantine — the caller named one precise artifact
        let text = io
            .read_to_string(path)
            .map_err(|e| ckpt_err(format!("cannot read snapshot {}: {e}", path.display())))?;
        let snap = LoopSnapshot::decode(&text)?;
        obs::global().counter("sqloop.checkpoint.resumes").inc();
        return Ok(RecoveredSnapshot {
            snapshot: snap,
            fallbacks: 0,
            quarantined: Vec::new(),
            note: None,
        });
    }
    let dir = if is_manifest {
        path.parent().unwrap_or(Path::new(".")).to_path_buf()
    } else {
        path.to_path_buf()
    };

    // candidate order: manifest `latest`, then older manifest generations
    // (newest first), then orphaned snapshot files from a directory scan
    // (newest first — zero-padded round numbers sort lexically)
    let mut trouble: Vec<String> = Vec::new();
    let mut candidates: Vec<String> = Vec::new();
    match read_manifest(io, &dir.join(MANIFEST_NAME)) {
        Ok(m) => {
            candidates.push(m.latest.clone());
            for h in m.history.iter().rev() {
                if !candidates.contains(h) {
                    candidates.push(h.clone());
                }
            }
        }
        Err(e) => trouble.push(format!("manifest unusable ({e})")),
    }
    if let Ok(names) = io.list_dir(&dir) {
        let mut orphans: Vec<String> = names
            .into_iter()
            .filter(|n| n.ends_with(".sqloop"))
            .collect();
        orphans.sort_by(|a, b| b.cmp(a));
        for o in orphans {
            if !candidates.contains(&o) {
                candidates.push(o);
            }
        }
    }
    if candidates.is_empty() {
        return Err(ckpt_err(format!(
            "no snapshot candidates in {}: {}",
            dir.display(),
            trouble.join("; ")
        )));
    }

    let reg = obs::global();
    let mut fallbacks = 0u64;
    let mut quarantined = Vec::new();
    for name in &candidates {
        let snap_path = dir.join(name);
        let text = match io.read_to_string(&snap_path) {
            Ok(t) => t,
            Err(e) => {
                trouble.push(format!("{name}: unreadable ({e})"));
                fallbacks += 1;
                continue;
            }
        };
        match LoopSnapshot::decode(&text) {
            Ok(snapshot) => {
                reg.counter("sqloop.checkpoint.resumes").inc();
                let note = if fallbacks > 0 || !trouble.is_empty() {
                    reg.counter("sqloop.ckpt.fallback_loads").inc();
                    Some(format!(
                        "recovered from {name} (round {}) after: {}",
                        snapshot.round,
                        trouble.join("; ")
                    ))
                } else {
                    None
                };
                return Ok(RecoveredSnapshot {
                    snapshot,
                    fallbacks,
                    quarantined,
                    note,
                });
            }
            Err(e) => {
                reg.counter("sqloop.ckpt.corrupt_detected").inc();
                fallbacks += 1;
                // move the bad file aside so the next save cannot collide
                // with it and operators can inspect (or salvage) it later
                let bad = dir.join(format!("{name}.corrupt"));
                match io.rename(&snap_path, &bad) {
                    Ok(()) => {
                        trouble.push(format!("{name}: corrupt, quarantined ({e})"));
                        quarantined.push(bad);
                    }
                    Err(_) => trouble.push(format!("{name}: corrupt ({e})")),
                }
            }
        }
    }
    Err(ckpt_err(format!(
        "no loadable snapshot in {} — tried {} candidate(s): {}",
        dir.display(),
        candidates.len(),
        trouble.join("; ")
    )))
}

/// Verifies a loaded snapshot against the resuming run's identity.
///
/// # Errors
/// [`SqloopError::Checkpoint`] naming both fingerprints on mismatch.
pub fn check_fingerprint(snap: &LoopSnapshot, expected: u64, mode_label: &str) -> SqloopResult<()> {
    if snap.fingerprint != expected {
        return Err(ckpt_err(format!(
            "checkpoint fingerprint {:016x} (mode {}) does not match this run's {expected:016x} \
             (mode {mode_label}) — the query, execution mode, or partition count changed",
            snap.fingerprint, snap.mode
        )));
    }
    Ok(())
}

// -- table dump/restore over a driver connection ---------------------------

/// Exports `table` through `conn` as a [`TableDump`], typed by `columns`
/// (name/type pairs in table order).
///
/// # Errors
/// Engine errors from the scan query.
pub fn dump_table_sql(
    conn: &mut dyn Connection,
    table: &str,
    columns: &[(String, DataType)],
    primary_key: Option<usize>,
) -> SqloopResult<TableDump> {
    let col_list = columns
        .iter()
        .map(|(n, _)| n.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    let rows = crate::common::run_query(conn, &format!("SELECT {col_list} FROM {table}"))?.rows;
    Ok(TableDump {
        name: table.to_owned(),
        columns: columns
            .iter()
            .map(|(n, t)| Column::new(n.clone(), *t))
            .collect(),
        primary_key,
        rows,
    })
}

/// Recreates a dumped table through `conn` (`DROP` + `CREATE` + batched
/// `INSERT`s of `batch_rows` rows).
///
/// # Errors
/// Engine errors, or [`SqloopError::Checkpoint`] for NaN floats — NaN has
/// no SQL literal, so a snapshot holding one cannot be restored through a
/// connection (the in-process [`sqldb::Database::import_table`] path can).
pub fn restore_table_sql(
    conn: &mut dyn Connection,
    dump: &TableDump,
    batch_rows: usize,
) -> SqloopResult<()> {
    let name = &dump.name;
    run(conn, &format!("DROP TABLE IF EXISTS {name}"))?;
    run(conn, &format!("DROP VIEW IF EXISTS {name}"))?;
    let cols = dump
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let pk = if dump.primary_key == Some(i) {
                " PRIMARY KEY"
            } else {
                ""
            };
            format!("{} {}{pk}", c.name, c.data_type)
        })
        .collect::<Vec<_>>()
        .join(", ");
    run(conn, &format!("CREATE TABLE {name} ({cols})"))?;
    let col_list = dump
        .columns
        .iter()
        .map(|c| c.name.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    for chunk in dump.rows.chunks(batch_rows.max(1)) {
        let mut values = Vec::with_capacity(chunk.len());
        for row in chunk {
            for v in row {
                if matches!(v, Value::Float(f) if f.is_nan()) {
                    return Err(ckpt_err(format!(
                        "table {name} holds a NaN, which has no SQL literal to restore through"
                    )));
                }
            }
            let lits = row.iter().map(value_literal).collect::<Vec<_>>().join(", ");
            values.push(format!("({lits})"));
        }
        run(
            conn,
            &format!(
                "INSERT INTO {name} ({col_list}) VALUES {}",
                values.join(", ")
            ),
        )?;
    }
    Ok(())
}

/// Records a checkpoint event into `trace` (helper shared by the
/// executors).
pub(crate) fn trace_checkpoint(trace: &obs::TraceHandle, round: u64, path: &Path) {
    trace.event(
        EventKind::Checkpoint,
        None,
        Some(round),
        format!("wrote {}", path.display()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqldb::Row;

    fn sample_snapshot() -> LoopSnapshot {
        LoopSnapshot {
            fingerprint: 0xdead_beef_0123_4567,
            mode: "Async".into(),
            round: 7,
            last_change: 42,
            parts: vec![
                PartSnap {
                    computes: 7,
                    msg_seq: 9,
                    pending: true,
                    prefer_compute: false,
                },
                PartSnap {
                    computes: 6,
                    msg_seq: 8,
                    pending: false,
                    prefer_compute: true,
                },
            ],
            seeds: vec![1, 2, 3],
            tables: vec![TableDump {
                name: "pr__pt0".into(),
                columns: vec![
                    Column::new("node", DataType::Int),
                    Column::new("rank", DataType::Float),
                ],
                primary_key: Some(0),
                rows: vec![
                    vec![Value::Int(1), Value::Float(0.15)] as Row,
                    vec![Value::Int(2), Value::Float(f64::INFINITY)],
                ],
            }],
        }
    }

    #[test]
    fn snapshot_encode_decode_round_trip() {
        let s = sample_snapshot();
        assert_eq!(LoopSnapshot::decode(&s.encode()).unwrap(), s);
        // empty variant too
        let empty = LoopSnapshot {
            parts: Vec::new(),
            seeds: Vec::new(),
            tables: Vec::new(),
            ..s
        };
        assert_eq!(LoopSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn corruption_is_detected() {
        let text = sample_snapshot().encode();
        // flip a digit in the body
        let corrupted = text.replacen("round 7", "round 8", 1);
        let err = LoopSnapshot::decode(&corrupted).unwrap_err();
        assert!(matches!(err, SqloopError::Checkpoint(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
        // truncation
        let truncated = &text[..text.len() / 2];
        assert!(LoopSnapshot::decode(truncated).is_err());
    }

    #[test]
    fn checkpointer_writes_manifest_and_rotates() {
        let dir = std::env::temp_dir().join(format!(
            "sqloop_ckpt_test_{}_{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut ck = Checkpointer::new(CheckpointConfig {
            dir: dir.clone(),
            interval: 2,
            keep_last: 2,
        })
        .unwrap();
        assert!(!ck.due(0));
        assert!(!ck.due(1));
        assert!(ck.due(2) && ck.due(4));

        let mut snap = sample_snapshot();
        for round in [2u64, 4, 6] {
            snap.round = round;
            ck.save(&snap).unwrap();
        }
        // oldest rotated away, newest two remain
        assert!(!dir.join("ckpt_r00000002.sqloop").exists());
        assert!(dir.join("ckpt_r00000004.sqloop").exists());
        assert!(dir.join("ckpt_r00000006.sqloop").exists());

        // manifest points at the latest; load from dir, manifest, and file
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.round, 6);
        assert_eq!(load_latest(&dir.join(MANIFEST_NAME)).unwrap().round, 6);
        assert_eq!(
            load_latest(&dir.join("ckpt_r00000004.sqloop"))
                .unwrap()
                .round,
            4
        );

        // a stray .tmp from a simulated crash mid-write is ignored
        std::fs::write(dir.join("ckpt_r00000008.tmp"), "torn garbage").unwrap();
        assert_eq!(load_latest(&dir).unwrap().round, 6);

        // a fresh Checkpointer picks up rotation history from the manifest
        let ck2 = Checkpointer::new(CheckpointConfig {
            dir: dir.clone(),
            interval: 2,
            keep_last: 2,
        })
        .unwrap();
        assert_eq!(ck2.history.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_error() {
        let snap = sample_snapshot();
        assert!(check_fingerprint(&snap, snap.fingerprint, "Async").is_ok());
        let err = check_fingerprint(&snap, 1, "Sync").unwrap_err();
        assert!(matches!(err, SqloopError::Checkpoint(_)), "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn dump_and_restore_through_a_connection() {
        use dbcp::{Driver, LocalDriver};
        let db = sqldb::Database::new(sqldb::EngineProfile::Postgres);
        let driver = LocalDriver::new(db);
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
            .unwrap();
        conn.execute("INSERT INTO t VALUES (1, 0.5), (2, Infinity), (3, -0.25)")
            .unwrap();
        let cols = vec![
            ("id".to_string(), DataType::Int),
            ("v".to_string(), DataType::Float),
        ];
        let dump = dump_table_sql(conn.as_mut(), "t", &cols, Some(0)).unwrap();
        assert_eq!(dump.rows.len(), 3);

        let db2 = sqldb::Database::new(sqldb::EngineProfile::Postgres);
        let driver2 = LocalDriver::new(db2);
        let mut conn2 = driver2.connect().unwrap();
        restore_table_sql(conn2.as_mut(), &dump, 2).unwrap();
        let out = conn2.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(3));
        let dump2 = dump_table_sql(conn2.as_mut(), "t", &cols, Some(0)).unwrap();
        let mut a = dump.rows.clone();
        let mut b = dump2.rows.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);

        // NaN is refused, not silently mangled
        let nan_dump = TableDump {
            name: "bad".into(),
            columns: vec![Column::new("x", DataType::Float)],
            primary_key: None,
            rows: vec![vec![Value::Float(f64::NAN)]],
        };
        assert!(matches!(
            restore_table_sql(conn2.as_mut(), &nan_dump, 8),
            Err(SqloopError::Checkpoint(_))
        ));
    }
}
