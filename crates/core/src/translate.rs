//! Dialect translation module (paper §IV-B).
//!
//! SQLoop composes its internal statements in one canonical dialect
//! (PostgreSQL-flavored) and, "every time before it submits a new query",
//! runs them through pre-defined rewrite rules for the target engine:
//!
//! | rule | PostgreSQL | MySQL | MariaDB |
//! |---|---|---|---|
//! | join update | `UPDATE … FROM` | `UPDATE … JOIN` | `UPDATE … JOIN` |
//! | `Infinity` literal | kept | `1e308` | `1e308` |
//! | `\|\|` concatenation | kept | `CONCAT(…)` | kept |
//! | identifier quoting | `"…"` | `` `…` `` | `` `…` `` |
//!
//! The engine *validates* statements against its profile
//! ([`sqldb::dialect_check`]), so skipping translation fails loudly — as it
//! would against the real engines.

use crate::error::{SqloopError, SqloopResult};
use sqldb::ast::*;
use sqldb::profile::EngineProfile;
use sqldb::render;
use sqldb::Value;

/// Translates a canonical-dialect statement AST for `target`.
pub fn translate_statement(stmt: &Statement, target: EngineProfile) -> Statement {
    let dialect = target.dialect();
    let mut stmt = stmt.clone();
    // rule 1: join-update syntax
    if let Statement::Update(u) = &mut stmt {
        if u.join_on.is_none() && !u.from.is_empty() && !dialect.supports_update_from {
            // UPDATE t SET … FROM f WHERE p  →  UPDATE t JOIN f ON p SET …
            u.join_on = Some(
                u.selection
                    .take()
                    .unwrap_or(Expr::Literal(Value::Bool(true))),
            );
        } else if u.join_on.is_some() && !dialect.supports_update_join {
            // UPDATE t JOIN f ON p SET … [WHERE q]  →  UPDATE t SET … FROM f WHERE p [AND q]
            let on = u.join_on.take().expect("checked above");
            u.selection = Some(match u.selection.take() {
                Some(w) => on.binary(BinaryOp::And, w),
                None => on,
            });
        }
    }
    // rule 2 & 3: expression-level rewrites
    map_statement_exprs(&mut stmt, &mut |e| rewrite_expr(e, target));
    stmt
}

/// Translates and renders a canonical statement to SQL text for `target`.
pub fn translate_to_sql(stmt: &Statement, target: EngineProfile) -> String {
    let translated = translate_statement(stmt, target);
    render::statement_to_sql(&translated, &target.dialect())
}

/// Parses canonical SQL, translates it, and renders it for `target`.
///
/// # Errors
/// Returns [`SqloopError::Grammar`] when the canonical SQL does not parse.
pub fn translate_sql(sql: &str, target: EngineProfile) -> SqloopResult<String> {
    let stmt = sqldb::parser::parse_statement(sql)
        .map_err(|e| SqloopError::Grammar(format!("canonical SQL: {e} in: {sql}")))?;
    Ok(translate_to_sql(&stmt, target))
}

/// Translates a bare query for `target` and renders it.
pub fn translate_query_to_sql(q: &SelectStmt, target: EngineProfile) -> String {
    let stmt = translate_statement(&Statement::Select(q.clone()), target);
    render::statement_to_sql(&stmt, &target.dialect())
}

fn rewrite_expr(e: &mut Expr, target: EngineProfile) {
    let dialect = target.dialect();
    match e {
        Expr::Literal(Value::Float(f)) if f.is_infinite() && !dialect.supports_infinity_literal => {
            *e = Expr::Literal(Value::Float(if *f > 0.0 { 1e308 } else { -1e308 }));
        }
        Expr::Binary {
            op: BinaryOp::Concat,
            left,
            right,
        } if !dialect.supports_concat_operator => {
            *e = Expr::Function {
                name: "concat".into(),
                args: vec![
                    FunctionArg::Expr((**left).clone()),
                    FunctionArg::Expr((**right).clone()),
                ],
            };
        }
        _ => {}
    }
}

// -- mutable AST walkers --------------------------------------------------

fn map_statement_exprs(stmt: &mut Statement, f: &mut impl FnMut(&mut Expr)) {
    match stmt {
        Statement::Select(q) => map_query(q, f),
        Statement::Insert(i) => match &mut i.source {
            InsertSource::Values(rows) => {
                for row in rows {
                    for e in row {
                        map_expr(e, f);
                    }
                }
            }
            InsertSource::Select(q) => map_query(q, f),
        },
        Statement::Update(u) => {
            for (_, e) in &mut u.assignments {
                map_expr(e, f);
            }
            for tr in &mut u.from {
                map_table_ref(tr, f);
            }
            if let Some(e) = &mut u.join_on {
                map_expr(e, f);
            }
            if let Some(e) = &mut u.selection {
                map_expr(e, f);
            }
        }
        Statement::Delete {
            selection: Some(e), ..
        } => {
            map_expr(e, f);
        }
        Statement::CreateTable(ct) => {
            if let Some(q) = &mut ct.as_select {
                map_query(q, f);
            }
        }
        Statement::CreateView(cv) => map_query(&mut cv.query, f),
        _ => {}
    }
}

fn map_query(q: &mut SelectStmt, f: &mut impl FnMut(&mut Expr)) {
    map_set_expr(&mut q.body, f);
    for o in &mut q.order_by {
        map_expr(&mut o.expr, f);
    }
}

fn map_set_expr(s: &mut SetExpr, f: &mut impl FnMut(&mut Expr)) {
    match s {
        SetExpr::Select(sel) => {
            for p in &mut sel.projections {
                if let SelectItem::Expr { expr, .. } = p {
                    map_expr(expr, f);
                }
            }
            for tr in &mut sel.from {
                map_table_ref(tr, f);
            }
            if let Some(e) = &mut sel.selection {
                map_expr(e, f);
            }
            for e in &mut sel.group_by {
                map_expr(e, f);
            }
            if let Some(e) = &mut sel.having {
                map_expr(e, f);
            }
        }
        SetExpr::Values(rows) => {
            for row in rows {
                for e in row {
                    map_expr(e, f);
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            map_set_expr(left, f);
            map_set_expr(right, f);
        }
    }
}

fn map_table_ref(tr: &mut TableRef, f: &mut impl FnMut(&mut Expr)) {
    map_factor(&mut tr.base, f);
    for j in &mut tr.joins {
        map_factor(&mut j.factor, f);
        if let Some(on) = &mut j.on {
            map_expr(on, f);
        }
    }
}

fn map_factor(factor: &mut TableFactor, f: &mut impl FnMut(&mut Expr)) {
    if let TableFactor::Derived { subquery, .. } = factor {
        map_query(subquery, f);
    }
}

fn map_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    // bottom-up: children first so a rewrite sees rewritten children
    match e {
        Expr::Literal(_) | Expr::Column { .. } | Expr::Param(_) => {}
        Expr::Binary { left, right, .. } => {
            map_expr(left, f);
            map_expr(right, f);
        }
        Expr::Unary { expr, .. } => map_expr(expr, f),
        Expr::Function { args, .. } => {
            for a in args {
                if let FunctionArg::Expr(e) = a {
                    map_expr(e, f);
                }
            }
        }
        Expr::Case {
            branches,
            else_result,
        } => {
            for (c, r) in branches {
                map_expr(c, f);
                map_expr(r, f);
            }
            if let Some(e) = else_result {
                map_expr(e, f);
            }
        }
        Expr::IsNull { expr, .. } => map_expr(expr, f),
        Expr::InList { expr, list, .. } => {
            map_expr(expr, f);
            for e in list {
                map_expr(e, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            map_expr(expr, f);
            map_expr(low, f);
            map_expr(high, f);
        }
        Expr::Cast { expr, .. } => map_expr(expr, f),
    }
    f(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqldb::dialect_check::validate;
    use sqldb::parser::parse_statement;

    /// every translated statement must validate on its target engine
    fn translate_and_validate(sql: &str, target: EngineProfile) -> String {
        let out = translate_sql(sql, target).unwrap();
        let stmt = parse_statement(&out).unwrap();
        validate(&stmt, &target.dialect()).unwrap_or_else(|e| panic!("{target}: {e}: {out}"));
        out
    }

    #[test]
    fn update_from_becomes_update_join_on_mysql() {
        let sql = "UPDATE r SET delta = m.v FROM msg AS m WHERE r.id = m.id";
        let out = translate_and_validate(sql, EngineProfile::MySql);
        assert!(out.contains("JOIN"), "{out}");
        assert!(!out.contains(" FROM "), "{out}");
        // unchanged on postgres
        let out = translate_and_validate(sql, EngineProfile::Postgres);
        assert!(out.contains("FROM"), "{out}");
    }

    #[test]
    fn update_join_becomes_update_from_on_postgres() {
        let sql = "UPDATE r JOIN msg ON r.id = msg.id SET delta = msg.v WHERE msg.v > 0";
        let out = translate_and_validate(sql, EngineProfile::Postgres);
        assert!(out.contains("FROM"), "{out}");
        // ON and WHERE merged
        assert!(out.contains("AND"), "{out}");
    }

    #[test]
    fn infinity_replaced_for_mysql_family() {
        let sql = "SELECT CASE WHEN a = 1 THEN 0 ELSE Infinity END FROM t";
        let out = translate_and_validate(sql, EngineProfile::MySql);
        assert!(out.contains("1e308"), "{out}");
        let out = translate_and_validate(sql, EngineProfile::MariaDb);
        assert!(out.contains("1e308"), "{out}");
        let out = translate_and_validate(sql, EngineProfile::Postgres);
        assert!(out.contains("Infinity"), "{out}");
    }

    #[test]
    fn concat_operator_becomes_function_on_mysql() {
        let sql = "SELECT a || b FROM t";
        let out = translate_and_validate(sql, EngineProfile::MySql);
        assert!(out.to_uppercase().contains("CONCAT("), "{out}");
        let out = translate_and_validate(sql, EngineProfile::MariaDb);
        assert!(out.contains("||"), "{out}");
    }

    #[test]
    fn quoting_follows_target() {
        let out = translate_sql("SELECT a FROM t", EngineProfile::MySql).unwrap();
        assert!(out.contains('`'), "{out}");
        let out = translate_sql("SELECT a FROM t", EngineProfile::Postgres).unwrap();
        assert!(out.contains('"'), "{out}");
    }

    #[test]
    fn nested_infinity_inside_update_assignment() {
        let sql = "UPDATE r SET d = LEAST(d, Infinity) WHERE id = 1";
        let out = translate_and_validate(sql, EngineProfile::MySql);
        assert!(out.contains("1e308"), "{out}");
    }

    #[test]
    fn every_profile_accepts_its_own_translation_of_a_gather_statement() {
        // the exact statement shape the Gather task emits
        let sql = "UPDATE pr__pt3 SET delta = delta + inc.val FROM \
                   (SELECT id, SUM(val) AS val FROM \
                    (SELECT id, val FROM pr__msg_1_0 UNION ALL SELECT id, val FROM pr__msg_2_0) \
                    AS msgs GROUP BY id) AS inc \
                   WHERE pr__pt3.node = inc.id";
        for p in EngineProfile::ALL {
            translate_and_validate(sql, p);
        }
    }
}
