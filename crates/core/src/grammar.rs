//! The extended CTE grammar (paper §III):
//!
//! ```sql
//! WITH RECURSIVE R [(col, …)] AS (R0 UNION ALL Ri) Qf
//! WITH ITERATIVE R [(col, …)] AS (R0 ITERATE Ri UNTIL Tc) Qf
//! ```
//!
//! plus every termination-condition form of Table I. The paper used an
//! antlr4-generated parser; here the skeleton is parsed by hand and the SQL
//! fragments (`R0`, `Ri`, `Qf`, termination sub-queries) are delegated to
//! the reusable [`sqldb::parser::Parser`], which stops gracefully at the
//! `ITERATE`/`UNTIL` keywords.

use crate::error::{SqloopError, SqloopResult};
use sqldb::ast::{SelectStmt, SetExpr, SetOperator};
use sqldb::parser::Parser;
use sqldb::Value;

/// One parsed SQLoop input.
#[derive(Debug, Clone, PartialEq)]
pub enum SqloopQuery {
    /// `WITH RECURSIVE …` — executed with semi-naive evaluation.
    Recursive(RecursiveCte),
    /// `WITH ITERATIVE …` — the paper's new construct.
    Iterative(IterativeCte),
    /// Anything else — passed through to the engine untouched (§IV-B).
    Plain(String),
}

/// A recursive CTE `WITH RECURSIVE R AS (R0 UNION [ALL] Ri) Qf`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveCte {
    /// CTE table name.
    pub name: String,
    /// Optional declared column names.
    pub columns: Vec<String>,
    /// The non-recursive part (anchor/seed).
    pub seed: SelectStmt,
    /// The recursive part (references `name` exactly once).
    pub recursive: SelectStmt,
    /// `UNION ALL` (bag) vs `UNION` (set) accumulation.
    pub union_all: bool,
    /// The final query `Qf` over the CTE table.
    pub final_query: SelectStmt,
}

/// An iterative CTE `WITH ITERATIVE R AS (R0 ITERATE Ri UNTIL Tc) Qf`.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeCte {
    /// CTE table name.
    pub name: String,
    /// Optional declared column names (first column is the key `Rid`).
    pub columns: Vec<String>,
    /// The initialization query `R0`.
    pub seed: SelectStmt,
    /// The iterative step `Ri`; its result *updates* rows of `R` matched on
    /// the first column.
    pub step: SelectStmt,
    /// The explicit termination condition `Tc`.
    pub termination: Termination,
    /// The final query `Qf`.
    pub final_query: SelectStmt,
}

/// Comparison operator inside a termination condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcCompare {
    /// `<`
    Less,
    /// `=`
    Equal,
    /// `>`
    Greater,
}

impl TcCompare {
    /// Applies the comparison.
    pub fn matches(&self, ord: std::cmp::Ordering) -> bool {
        matches!(
            (self, ord),
            (TcCompare::Less, std::cmp::Ordering::Less)
                | (TcCompare::Equal, std::cmp::Ordering::Equal)
                | (TcCompare::Greater, std::cmp::Ordering::Greater)
        )
    }
}

/// How a data/delta expression decides satisfaction (Table I).
#[derive(Debug, Clone, PartialEq)]
pub enum DataMode {
    /// Satisfied when the expression returns `|R|` rows.
    All,
    /// `ANY expr` — satisfied when the expression returns ≥ 1 row.
    Any,
    /// `expr <,=,> e` — the scalar result compared against a constant.
    Compare(TcCompare, Value),
}

/// Every termination-condition type of Table I.
#[derive(Debug, Clone, PartialEq)]
pub enum Termination {
    /// Metadata: `UNTIL n ITERATIONS` — stop after n iterations.
    Iterations(u64),
    /// Metadata: `UNTIL n UPDATES` — stop once `Ri` updates ≤ n rows.
    Updates(u64),
    /// Data: `UNTIL [ANY] expr [<,=,> e]`.
    Data {
        /// The user's SQL expression (a query over `R`).
        query: SelectStmt,
        /// Satisfaction mode.
        mode: DataMode,
    },
    /// Delta: `UNTIL [ANY] DELTA expr [<,=,> e]` — `expr` may reference the
    /// previous iteration's snapshot as `<R>delta`.
    Delta {
        /// The user's SQL expression (over `R` and `Rdelta`).
        query: SelectStmt,
        /// Satisfaction mode.
        mode: DataMode,
    },
}

impl Termination {
    /// True for the `DELTA` forms, which need the previous-iteration snapshot.
    pub fn needs_delta_snapshot(&self) -> bool {
        matches!(self, Termination::Delta { .. })
    }
}

/// Parses one SQLoop input string.
///
/// # Errors
/// Returns [`SqloopError::Grammar`] when a `WITH RECURSIVE/ITERATIVE` prefix
/// is present but the rest does not follow the grammar. Regular SQL (no such
/// prefix) is returned as [`SqloopQuery::Plain`] without validation — the
/// engine parses it (paper §IV-B: non-CTE statements are "executed as such").
pub fn parse(sql: &str) -> SqloopResult<SqloopQuery> {
    let mut p = Parser::from_sql(sql).map_err(|e| SqloopError::Grammar(e.to_string()))?;
    if !p.eat_keyword("with") {
        return Ok(SqloopQuery::Plain(sql.to_owned()));
    }
    let recursive = p.eat_keyword("recursive");
    let iterative = !recursive && p.eat_keyword("iterative");
    if !recursive && !iterative {
        // plain (non-recursive) WITH is not implemented by the middleware;
        // pass through so the engine can reject or support it
        return Ok(SqloopQuery::Plain(sql.to_owned()));
    }
    let name = p
        .expect_ident()
        .map_err(|e| SqloopError::Grammar(e.to_string()))?;
    let mut columns = Vec::new();
    // optional column list
    if peek_lparen_column_list(&mut p)? {
        loop {
            columns.push(
                p.expect_ident()
                    .map_err(|e| SqloopError::Grammar(e.to_string()))?,
            );
            if !eat_comma(&mut p) {
                break;
            }
        }
        expect_rparen(&mut p)?;
    }
    expect_kw(&mut p, "as")?;
    expect_lparen(&mut p)?;

    if recursive {
        let inner = p
            .parse_query()
            .map_err(|e| SqloopError::Grammar(e.to_string()))?;
        expect_rparen(&mut p)?;
        let final_query = p
            .parse_query()
            .map_err(|e| SqloopError::Grammar(e.to_string()))?;
        p.skip_semicolons();
        p.expect_eof()
            .map_err(|e| SqloopError::Grammar(e.to_string()))?;
        // split the top-level UNION [ALL]: left = seed, right = recursive part
        let (seed, recursive_part, union_all) = match inner.body {
            SetExpr::SetOp { op, left, right }
                if inner.order_by.is_empty() && inner.limit.is_none() =>
            {
                (
                    SelectStmt {
                        body: *left,
                        order_by: Vec::new(),
                        limit: None,
                    },
                    SelectStmt {
                        body: *right,
                        order_by: Vec::new(),
                        limit: None,
                    },
                    op == SetOperator::UnionAll,
                )
            }
            _ => {
                return Err(SqloopError::Grammar(
                    "recursive CTE body must be `R0 UNION [ALL] Ri`".into(),
                ))
            }
        };
        return Ok(SqloopQuery::Recursive(RecursiveCte {
            name,
            columns,
            seed,
            recursive: recursive_part,
            union_all,
            final_query,
        }));
    }

    // iterative: R0 ITERATE Ri UNTIL Tc
    let seed = p
        .parse_query()
        .map_err(|e| SqloopError::Grammar(e.to_string()))?;
    expect_kw(&mut p, "iterate")?;
    let step = p
        .parse_query()
        .map_err(|e| SqloopError::Grammar(e.to_string()))?;
    expect_kw(&mut p, "until")?;
    let termination = parse_termination(&mut p)?;
    expect_rparen(&mut p)?;
    let final_query = p
        .parse_query()
        .map_err(|e| SqloopError::Grammar(e.to_string()))?;
    p.skip_semicolons();
    p.expect_eof()
        .map_err(|e| SqloopError::Grammar(e.to_string()))?;
    Ok(SqloopQuery::Iterative(IterativeCte {
        name,
        columns,
        seed,
        step,
        termination,
        final_query,
    }))
}

fn parse_termination(p: &mut Parser) -> SqloopResult<Termination> {
    // metadata forms: `n ITERATIONS` / `n UPDATES`
    if let Some(n) = eat_integer(p) {
        if p.eat_keyword("iterations") || p.eat_keyword("iteration") {
            return Ok(Termination::Iterations(n));
        }
        if p.eat_keyword("updates") || p.eat_keyword("update") {
            return Ok(Termination::Updates(n));
        }
        return Err(SqloopError::Grammar(
            "expected ITERATIONS or UPDATES after the count".into(),
        ));
    }
    let any = p.eat_keyword("any");
    let delta = p.eat_keyword("delta");
    // the expression is a (possibly parenthesized) query
    let query = parse_tc_query(p)?;
    let mode = if any {
        DataMode::Any
    } else if let Some(cmp) = eat_compare(p) {
        let value = eat_literal(p).ok_or_else(|| {
            SqloopError::Grammar("expected a literal after the comparison operator".into())
        })?;
        DataMode::Compare(cmp, value)
    } else {
        DataMode::All
    };
    if delta {
        Ok(Termination::Delta { query, mode })
    } else {
        Ok(Termination::Data { query, mode })
    }
}

fn parse_tc_query(p: &mut Parser) -> SqloopResult<SelectStmt> {
    p.parse_query()
        .map_err(|e| SqloopError::Grammar(format!("termination expression: {e}")))
}

// -- small token helpers over the reusable parser ------------------------

fn expect_kw(p: &mut Parser, kw: &str) -> SqloopResult<()> {
    p.expect_keyword(kw)
        .map_err(|e| SqloopError::Grammar(e.to_string()))
}

fn eat_comma(p: &mut Parser) -> bool {
    // the underlying parser exposes keywords; commas via a mini-parse trick:
    // parse_expr would be overkill, so lean on expect via from_sql? Instead
    // the Parser exposes only keyword/ident utilities — extend with symbols.
    p.eat_symbol_comma()
}

fn expect_lparen(p: &mut Parser) -> SqloopResult<()> {
    if p.eat_symbol_lparen() {
        Ok(())
    } else {
        Err(SqloopError::Grammar("expected (".into()))
    }
}

fn expect_rparen(p: &mut Parser) -> SqloopResult<()> {
    if p.eat_symbol_rparen() {
        Ok(())
    } else {
        Err(SqloopError::Grammar("expected )".into()))
    }
}

fn peek_lparen_column_list(p: &mut Parser) -> SqloopResult<bool> {
    // a column list is `(` not followed by SELECT/VALUES
    Ok(p.peek_lparen_ident())
}

fn eat_integer(p: &mut Parser) -> Option<u64> {
    p.eat_integer_token()
}

fn eat_compare(p: &mut Parser) -> Option<TcCompare> {
    if p.eat_symbol_lt() {
        Some(TcCompare::Less)
    } else if p.eat_symbol_eq() {
        Some(TcCompare::Equal)
    } else if p.eat_symbol_gt() {
        Some(TcCompare::Greater)
    } else {
        None
    }
}

fn eat_literal(p: &mut Parser) -> Option<Value> {
    p.eat_literal_token()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGERANK: &str = "\
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL 100 ITERATIONS)
SELECT Node, Rank FROM PageRank";

    const SSSP: &str = "\
WITH ITERATIVE sssp (Node, Distance, Delta) AS (
  SELECT src, Infinity, CASE WHEN src = 1 THEN 0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges
  GROUP BY src
  ITERATE
  SELECT sssp.Node,
         LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Distance + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta != Infinity
  GROUP BY sssp.node
  UNTIL 0 UPDATES)
SELECT sssp.Distance FROM sssp WHERE sssp.Node = 100";

    const FIBONACCI: &str = "\
WITH RECURSIVE Fibonacci(n, pn) AS (
  VALUES (0, 1)
  UNION ALL
  SELECT n + pn, n FROM Fibonacci WHERE n < 1000)
SELECT SUM(n) FROM Fibonacci";

    #[test]
    fn parse_paper_example_2_pagerank() {
        let q = parse(PAGERANK).unwrap();
        match q {
            SqloopQuery::Iterative(cte) => {
                assert_eq!(cte.name, "pagerank");
                assert_eq!(cte.columns, vec!["node", "rank", "delta"]);
                assert_eq!(cte.termination, Termination::Iterations(100));
            }
            other => panic!("expected iterative, got {other:?}"),
        }
    }

    #[test]
    fn parse_paper_example_3_sssp() {
        let q = parse(SSSP).unwrap();
        match q {
            SqloopQuery::Iterative(cte) => {
                assert_eq!(cte.name, "sssp");
                assert_eq!(cte.termination, Termination::Updates(0));
            }
            other => panic!("expected iterative, got {other:?}"),
        }
    }

    #[test]
    fn parse_paper_example_1_fibonacci() {
        let q = parse(FIBONACCI).unwrap();
        match q {
            SqloopQuery::Recursive(cte) => {
                assert_eq!(cte.name, "fibonacci");
                assert!(cte.union_all);
                assert!(matches!(cte.seed.body, SetExpr::Values(_)));
            }
            other => panic!("expected recursive, got {other:?}"),
        }
    }

    #[test]
    fn plain_sql_passes_through() {
        let q = parse("SELECT * FROM t").unwrap();
        assert!(matches!(q, SqloopQuery::Plain(_)));
        let q = parse("INSERT INTO t VALUES (1)").unwrap();
        assert!(matches!(q, SqloopQuery::Plain(_)));
    }

    #[test]
    fn all_table_one_termination_forms() {
        let base = |tc: &str| {
            format!(
                "WITH ITERATIVE r(id, v) AS (SELECT id, 0 FROM t GROUP BY id \
                 ITERATE SELECT r.id, r.v FROM r GROUP BY r.id UNTIL {tc}) SELECT * FROM r"
            )
        };
        type TerminationCheck = fn(&Termination) -> bool;
        let cases: Vec<(&str, TerminationCheck)> = vec![
            ("5 ITERATIONS", |t| matches!(t, Termination::Iterations(5))),
            ("10 UPDATES", |t| matches!(t, Termination::Updates(10))),
            ("SELECT id FROM r WHERE v > 0", |t| {
                matches!(
                    t,
                    Termination::Data {
                        mode: DataMode::All,
                        ..
                    }
                )
            }),
            ("ANY SELECT id FROM r WHERE v > 3", |t| {
                matches!(
                    t,
                    Termination::Data {
                        mode: DataMode::Any,
                        ..
                    }
                )
            }),
            ("SELECT COUNT(*) FROM r > 7", |t| {
                matches!(
                    t,
                    Termination::Data {
                        mode: DataMode::Compare(TcCompare::Greater, _),
                        ..
                    }
                )
            }),
            ("DELTA SELECT id FROM r", |t| {
                matches!(
                    t,
                    Termination::Delta {
                        mode: DataMode::All,
                        ..
                    }
                )
            }),
            ("ANY DELTA SELECT id FROM r", |t| {
                matches!(
                    t,
                    Termination::Delta {
                        mode: DataMode::Any,
                        ..
                    }
                )
            }),
            ("DELTA SELECT SUM(v) FROM r < 0.001", |t| {
                matches!(
                    t,
                    Termination::Delta {
                        mode: DataMode::Compare(TcCompare::Less, _),
                        ..
                    }
                )
            }),
        ];
        for (tc, check) in cases {
            let q = parse(&base(tc)).unwrap_or_else(|e| panic!("{tc}: {e}"));
            match q {
                SqloopQuery::Iterative(cte) => {
                    assert!(check(&cte.termination), "{tc}: got {:?}", cte.termination)
                }
                _ => panic!("{tc}: not iterative"),
            }
        }
    }

    #[test]
    fn grammar_errors_are_reported() {
        // missing UNTIL
        let bad = "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 2) SELECT 3";
        assert!(matches!(parse(bad), Err(SqloopError::Grammar(_))));
        // recursive without UNION
        let bad = "WITH RECURSIVE r AS (SELECT 1) SELECT 2";
        assert!(matches!(parse(bad), Err(SqloopError::Grammar(_))));
        // dangling count
        let bad = "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 2 UNTIL 5 BANANAS) SELECT 3";
        assert!(matches!(parse(bad), Err(SqloopError::Grammar(_))));
    }

    #[test]
    fn delta_snapshot_flag() {
        assert!(Termination::Delta {
            query: sqldb::parser::parse_query("SELECT 1").unwrap(),
            mode: DataMode::All
        }
        .needs_delta_snapshot());
        assert!(!Termination::Iterations(3).needs_delta_snapshot());
    }
}
