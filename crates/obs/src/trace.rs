//! Per-run trace recording: timestamped spans (Compute/Gather tasks,
//! single-threaded iterations) and point events (retries, reconnects,
//! downgrades, round boundaries), behind a cheap handle that is a no-op
//! when tracing is off.
//!
//! All timestamps are microseconds since the [`TraceHandle`] was created,
//! so traces from one run are directly comparable and serialize compactly.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A Compute task on one partition (parallel engine).
    Compute,
    /// A Gather task on one partition (parallel engine).
    Gather,
    /// One iteration of the single-threaded executor.
    Iteration,
}

impl SpanKind {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Gather => "gather",
            SpanKind::Iteration => "iteration",
        }
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanOutcome {
    /// The task/iteration completed.
    Ok,
    /// The task attempt failed (it may be replayed as a new span).
    Failed,
}

impl SpanOutcome {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::Failed => "failed",
        }
    }
}

/// One timed unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What was measured.
    pub kind: SpanKind,
    /// Partition the task ran on (parallel engine only).
    pub partition: Option<u32>,
    /// Iteration / scheduler round the work belonged to.
    pub iteration: Option<u64>,
    /// Worker thread index that ran the task (parallel engine only).
    pub worker: Option<u32>,
    /// 1-based dispatch attempt (> 1 for replays of a failed task).
    pub attempt: u32,
    /// Rows changed/produced by the work.
    pub rows: u64,
    /// How it ended.
    pub outcome: SpanOutcome,
    /// Start, µs since the trace began.
    pub start_us: u64,
    /// End, µs since the trace began.
    pub end_us: u64,
}

/// What a point event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A failed task was re-dispatched (replay).
    Retry,
    /// A worker reopened its engine connection.
    Reconnect,
    /// Parallel execution was abandoned for the single-threaded executor.
    Downgrade,
    /// A scheduler round / iteration boundary.
    Round,
    /// Per-round plan-cache attribution: hit/miss deltas over the round,
    /// tagged with the scheduler mode in the detail string.
    PlanCache,
    /// A Sync-mode phase barrier completed.
    Barrier,
    /// A task attempt failed (transient or not).
    Fault,
    /// The progress sampler failed to take a sample.
    SampleFailed,
    /// A durable checkpoint of loop state was written.
    Checkpoint,
    /// A run was restored from a checkpoint manifest.
    Resume,
    /// Cooperative cancellation was observed (deadline or request).
    Cancel,
    /// The resource watchdog rendered a verdict (budget exhausted or
    /// numeric divergence) and the run aborted governed.
    Watchdog,
    /// The supervisor judged a busy worker stalled (heartbeat silent past
    /// the stall timeout) and abandoned it.
    Stall,
    /// A worker panic was absorbed: caught at the task boundary,
    /// discovered at thread join, or a dead-thread verdict mid-task.
    Panic,
    /// A replacement worker was spawned for an abandoned one.
    Replace,
}

impl EventKind {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Retry => "retry",
            EventKind::Reconnect => "reconnect",
            EventKind::Downgrade => "downgrade",
            EventKind::Round => "round",
            EventKind::PlanCache => "plan_cache",
            EventKind::Barrier => "barrier",
            EventKind::Fault => "fault",
            EventKind::SampleFailed => "sample_failed",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Resume => "resume",
            EventKind::Cancel => "cancel",
            EventKind::Watchdog => "watchdog",
            EventKind::Stall => "stall",
            EventKind::Panic => "panic",
            EventKind::Replace => "replace",
        }
    }
}

/// One point-in-time occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// When, µs since the trace began.
    pub at_us: u64,
    /// Partition involved, when one was.
    pub partition: Option<u32>,
    /// Iteration / round the event belongs to, when known.
    pub iteration: Option<u64>,
    /// Free-form context (error text, counts).
    pub detail: String,
}

/// A finished (or in-progress) trace: everything recorded so far.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Recorded spans, in completion order.
    pub spans: Vec<Span>,
    /// Recorded events, in arrival order.
    pub events: Vec<Event>,
    /// µs from trace start to the snapshot.
    pub duration_us: u64,
}

#[derive(Debug)]
struct TraceBuffer {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    events: Mutex<Vec<Event>>,
}

/// A cheap, clonable recorder handle. When created disabled, every method
/// returns immediately without taking a timestamp or a lock, so leaving
/// instrumentation in hot paths costs one branch.
///
/// # Examples
/// ```
/// use obs::{EventKind, Span, SpanKind, SpanOutcome, TraceHandle};
///
/// let trace = TraceHandle::new(true);
/// let t0 = trace.now_us();
/// // ... do the work ...
/// trace.span(Span {
///     kind: SpanKind::Compute,
///     partition: Some(3),
///     iteration: Some(1),
///     worker: Some(0),
///     attempt: 1,
///     rows: 42,
///     outcome: SpanOutcome::Ok,
///     start_us: t0,
///     end_us: trace.now_us(),
/// });
/// trace.event(EventKind::Round, None, Some(1), "round complete");
/// let data = trace.data().unwrap();
/// assert_eq!(data.spans.len(), 1);
/// assert_eq!(data.events[0].kind, EventKind::Round);
///
/// let off = TraceHandle::disabled();
/// off.event(EventKind::Retry, None, None, "dropped");
/// assert!(off.data().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Arc<TraceBuffer>>);

impl TraceHandle {
    /// An enabled handle when `enabled`, otherwise a no-op handle.
    pub fn new(enabled: bool) -> TraceHandle {
        if enabled {
            TraceHandle(Some(Arc::new(TraceBuffer {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
            })))
        } else {
            TraceHandle(None)
        }
    }

    /// A handle that records nothing (the `Default`).
    pub fn disabled() -> TraceHandle {
        TraceHandle(None)
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// µs since the trace began (0 when disabled — no clock is read).
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Some(b) => b.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            None => 0,
        }
    }

    /// Records a finished span.
    pub fn span(&self, span: Span) {
        if let Some(b) = &self.0 {
            b.spans.lock().push(span);
        }
    }

    /// Records a point event at the current time.
    pub fn event(
        &self,
        kind: EventKind,
        partition: Option<u32>,
        iteration: Option<u64>,
        detail: impl Into<String>,
    ) {
        if let Some(b) = &self.0 {
            let at_us = b.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            b.events.lock().push(Event {
                kind,
                at_us,
                partition,
                iteration,
                detail: detail.into(),
            });
        }
    }

    /// A copy of everything recorded so far (`None` when disabled).
    pub fn data(&self) -> Option<TraceData> {
        self.0.as_ref().map(|b| TraceData {
            spans: b.spans.lock().clone(),
            events: b.events.lock().clone(),
            duration_us: b.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_reads_no_clock() {
        let t = TraceHandle::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_us(), 0);
        t.span(Span {
            kind: SpanKind::Gather,
            partition: None,
            iteration: None,
            worker: None,
            attempt: 1,
            rows: 0,
            outcome: SpanOutcome::Ok,
            start_us: 0,
            end_us: 0,
        });
        t.event(EventKind::Fault, None, None, "x");
        assert!(t.data().is_none());
    }

    #[test]
    fn enabled_handle_orders_events_and_timestamps() {
        let t = TraceHandle::new(true);
        t.event(EventKind::Retry, Some(1), None, "a");
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.event(EventKind::Reconnect, Some(2), None, "b");
        let d = t.data().unwrap();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].kind, EventKind::Retry);
        assert!(d.events[1].at_us >= d.events[0].at_us);
        assert!(d.duration_us >= d.events[1].at_us);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = TraceHandle::new(true);
        let t2 = t.clone();
        t2.event(EventKind::Round, None, Some(1), "");
        assert_eq!(t.data().unwrap().events.len(), 1);
    }

    #[test]
    fn concurrent_span_recording_loses_nothing() {
        let t = TraceHandle::new(true);
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let start = t.now_us();
                        t.span(Span {
                            kind: SpanKind::Compute,
                            partition: Some(i),
                            iteration: None,
                            worker: Some(w),
                            attempt: 1,
                            rows: 1,
                            outcome: SpanOutcome::Ok,
                            start_us: start,
                            end_us: t.now_us(),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.data().unwrap().spans.len(), 1000);
    }
}
