//! The middleware against a *remote* engine: the full parallel machinery
//! (one TCP connection per worker, message tables, gathers) over the wire
//! protocol.

use dbcp::{Driver, Server, TcpDriver};
use sqldb::{Database, EngineProfile, Value};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, Strategy};
use std::sync::Arc;

fn serve(profile: EngineProfile, graph: &graphgen::Graph) -> (Server, Arc<TcpDriver>) {
    let db = Database::new(profile);
    let server = Server::bind(db, "127.0.0.1:0").unwrap();
    let driver = Arc::new(TcpDriver::connect(&server.addr().to_string()).unwrap());
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    (server, driver)
}

#[test]
fn parallel_pagerank_over_tcp() {
    let g = graphgen::web_graph(80, 3, 5);
    let (server, driver) = serve(EngineProfile::Postgres, &g);
    let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::Async,
        threads: 3,
        partitions: 8,
        ..SqloopConfig::default()
    });
    let report = sq
        .execute_detailed(&workloads::queries::pagerank(8))
        .unwrap();
    assert!(matches!(
        report.strategy,
        Strategy::IterativeParallel { .. }
    ));
    assert_eq!(report.result.rows.len(), g.node_count());
    // same numbers as a local run
    let db = Database::new(EngineProfile::Postgres);
    let local = Arc::new(dbcp::LocalDriver::new(db));
    let mut conn = local.connect().unwrap();
    workloads::load_edges(conn.as_mut(), &g).unwrap();
    drop(conn);
    let local_sq = SQLoop::new(local as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::Async,
        threads: 3,
        partitions: 8,
        ..SqloopConfig::default()
    });
    let local_out = local_sq.execute(&workloads::queries::pagerank(8)).unwrap();
    // async scheduling interleaves differently run to run, so the amount of
    // rank applied when the iteration caps hit varies slightly — transport
    // must not change results beyond that scheduling noise
    assert_eq!(report.result.rows.len(), local_out.rows.len());
    for (a, b) in report.result.rows.iter().zip(&local_out.rows) {
        assert_eq!(a[0], b[0]);
        let (x, y) = (a[1].as_f64().unwrap(), b[1].as_f64().unwrap());
        assert!(
            (x - y).abs() <= 0.01 * x.abs().max(1.0),
            "node {:?}: tcp {x} vs local {y}",
            a[0]
        );
    }
    server.shutdown();
}

#[test]
fn sssp_over_tcp_on_mysql_profile() {
    let g = graphgen::ego_network(6, 10, 3, 2);
    let oracle = workloads::oracle::sssp(&g, 0);
    let (server, driver) = serve(EngineProfile::MySql, &g);
    let sq = SQLoop::new(driver as Arc<dyn Driver>).with_config(SqloopConfig {
        mode: ExecutionMode::AsyncPrio,
        threads: 2,
        partitions: 8,
        priority: Some(PrioritySpec::lowest("SELECT MIN(delta) FROM {}")),
        ..SqloopConfig::default()
    });
    let out = sq.execute(&workloads::queries::sssp_all(0)).unwrap();
    for row in &out.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let d = row[1].as_f64().unwrap();
        match oracle.get(&node) {
            Some(&e) => assert!((d - e).abs() < 1e-9, "node {node}"),
            None => assert!(d.is_infinite()),
        }
    }
    server.shutdown();
}

#[test]
fn recursive_cte_over_tcp() {
    let g = graphgen::chain(5);
    let (server, driver) = serve(EngineProfile::MariaDb, &g);
    // note: the MariaDB 10.2 profile *does* support recursive CTEs natively,
    // but SQLoop always evaluates them itself so MySQL 5.7 users get them too
    let sq = SQLoop::new(driver as Arc<dyn Driver>);
    let out = sq
        .execute(
            "WITH RECURSIVE reach(node) AS (\
             SELECT 0 UNION SELECT edges.dst FROM reach JOIN edges ON reach.node = edges.src) \
             SELECT COUNT(*) FROM reach",
        )
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(5));
    server.shutdown();
}

#[test]
fn url_connect_end_to_end() {
    let db = Database::new(EngineProfile::Postgres);
    let server = Server::bind(db, "127.0.0.1:0").unwrap();
    let sq = SQLoop::connect(&format!("tcp://{}", server.addr())).unwrap();
    sq.execute("CREATE TABLE t (a INT)").unwrap();
    sq.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let out = sq.execute("SELECT SUM(a) FROM t").unwrap();
    assert_eq!(out.rows[0][0], Value::Int(6));
    server.shutdown();
}
