//! Watchdog and budget oracle tests: runs that are *known* to diverge or
//! exhaust their budget must terminate with a typed verdict and leave a
//! valid final checkpoint behind, in every execution mode.

use dbcp::LocalDriver;
use sqldb::{Database, EngineProfile, Value};
use sqloop::checkpoint::load_latest;
use sqloop::{CheckpointConfig, ExecutionMode, PrioritySpec, SQLoop, SqloopConfig, SqloopError};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ALL_MODES: [ExecutionMode; 4] = [
    ExecutionMode::Single,
    ExecutionMode::Sync,
    ExecutionMode::Async,
    ExecutionMode::AsyncPrio,
];

/// A PageRank-shaped loop over `edges`; with enormous edge weights the rank
/// mass overflows `f64` within a handful of rounds — a classic runaway.
const PAGERANK: &str = "\
WITH ITERATIVE PageRank(Node, Rank, Delta) AS (
  SELECT src, 0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges GROUP BY src
  ITERATE
  SELECT PageRank.Node,
         COALESCE(PageRank.Rank + PageRank.Delta, 0.15),
         COALESCE(0.85 * SUM(IncomingRank.Delta * IncomingEdges.weight), 0.0)
  FROM PageRank
  LEFT JOIN edges AS IncomingEdges ON PageRank.Node = IncomingEdges.dst
  LEFT JOIN PageRank AS IncomingRank ON IncomingRank.Node = IncomingEdges.src
  GROUP BY PageRank.Node
  UNTIL 50 ITERATIONS)
SELECT Node, Rank FROM PageRank ORDER BY Node";

const SSSP: &str = "\
WITH ITERATIVE sssp(Node, Distance, Delta) AS (
  SELECT src, Infinity, CASE WHEN src = 0 THEN 0 ELSE Infinity END
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS alledges GROUP BY src
  ITERATE
  SELECT sssp.Node, LEAST(sssp.Distance, sssp.Delta),
         COALESCE(MIN(Neighbor.Delta + IncomingEdges.weight), Infinity)
  FROM sssp
  LEFT JOIN edges AS IncomingEdges ON sssp.Node = IncomingEdges.dst
  LEFT JOIN sssp AS Neighbor ON Neighbor.Node = IncomingEdges.src
  WHERE Neighbor.Delta < Neighbor.Distance OR sssp.Delta < sssp.Distance
  GROUP BY sssp.Node
  UNTIL 0 UPDATES)
SELECT Node, Distance FROM sssp ORDER BY Node";

/// Fresh database with a ring of `nodes` edges of the given `weight`.
fn db_with_ring(nodes: u64, weight: &str) -> Database {
    let db = Database::new(EngineProfile::Postgres);
    let mut s = db.connect();
    s.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    let values: Vec<String> = (0..nodes)
        .map(|i| format!("({i},{},{weight})", (i + 1) % nodes))
        .collect();
    s.execute(&format!("INSERT INTO edges VALUES {}", values.join(",")))
        .unwrap();
    db
}

/// Fresh database with a forward chain `0 → 1 → … → nodes-1`.
fn db_with_chain(nodes: u64) -> Database {
    let db = Database::new(EngineProfile::Postgres);
    let mut s = db.connect();
    s.execute("CREATE TABLE edges (src INT, dst INT, weight FLOAT)")
        .unwrap();
    let values: Vec<String> = (0..nodes - 1)
        .map(|i| format!("({i},{},1.0)", i + 1))
        .collect();
    s.execute(&format!("INSERT INTO edges VALUES {}", values.join(",")))
        .unwrap();
    db
}

fn sqloop_for(db: &Database, mode: ExecutionMode, config: SqloopConfig) -> SQLoop {
    let mut config = SqloopConfig {
        mode,
        threads: if mode == ExecutionMode::Single { 1 } else { 3 },
        partitions: if mode == ExecutionMode::Single { 1 } else { 4 },
        ..config
    };
    if mode == ExecutionMode::AsyncPrio {
        config.priority = Some(PrioritySpec::highest("SELECT SUM(delta) FROM {}"));
    }
    SQLoop::new(Arc::new(LocalDriver::new(db.clone()))).with_config(config)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sqloop-gov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn max_rounds_budget_is_typed_in_every_mode() {
    for mode in ALL_MODES {
        let db = db_with_ring(24, "1.0");
        let mut config = SqloopConfig::default();
        config.watchdog.max_rounds = Some(3);
        let err = sqloop_for(&db, mode, config).execute(PAGERANK);
        match err {
            Err(SqloopError::BudgetExceeded { ref what, round }) => {
                assert!(what.contains("max_rounds"), "{mode}: {what}");
                assert_eq!(round, 3, "{mode}");
            }
            other => panic!("{mode}: expected a typed round budget, got {other:?}"),
        }
    }
}

#[test]
fn diverging_pagerank_aborts_typed_with_a_valid_checkpoint() {
    for mode in ALL_MODES {
        // 1e100 edge weights blow the rank mass past f64 within ~3 rounds
        let db = db_with_ring(24, "1e100");
        let dir = temp_dir(&format!("div-{mode}"));
        let mut config = SqloopConfig::default();
        config.watchdog.numeric_checks = true;
        config.checkpoint = Some(CheckpointConfig::new(&dir).every(1));
        let err = sqloop_for(&db, mode, config).execute(PAGERANK);
        match err {
            Err(SqloopError::NumericDivergence {
                round, ref detail, ..
            }) => {
                assert!(round >= 1, "{mode}: diverged before any round? {round}");
                assert!(
                    detail.contains("inf") || detail.contains("NaN"),
                    "{mode}: {detail}"
                );
            }
            other => panic!("{mode}: expected numeric divergence, got {other:?}"),
        }
        // the governed abort left a loadable final snapshot behind
        let snap = load_latest(&dir).unwrap_or_else(|e| panic!("{mode}: no checkpoint: {e}"));
        assert!(!snap.tables.is_empty(), "{mode}: snapshot carries no state");
        assert!(snap.round >= 1, "{mode}: snapshot before any round");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn oscillating_sssp_trips_the_trend_watchdog() {
    for mode in [ExecutionMode::Single, ExecutionMode::Sync] {
        // a negative cycle: distances decrease forever, updates never shrink
        let db = db_with_ring(2, "-1.0");
        let mut config = SqloopConfig::default();
        config.watchdog.window = Some(4);
        let err = sqloop_for(&db, mode, config).execute(SSSP);
        match err {
            Err(SqloopError::NumericDivergence { ref detail, .. }) => {
                assert!(detail.contains("not converging"), "{mode}: {detail}");
            }
            other => panic!("{mode}: expected a trend verdict, got {other:?}"),
        }
    }
}

#[test]
fn memory_budget_abort_resumes_with_a_larger_budget() {
    const NODES: u64 = 150;
    // oracle: the unconstrained fixpoint
    let oracle = sqloop_for(
        &db_with_chain(NODES),
        ExecutionMode::Single,
        SqloopConfig::default(),
    )
    .execute(SSSP)
    .unwrap();
    assert_eq!(oracle.rows.len(), NODES as usize);

    // governed life: checkpoint every round, then squeeze the engine's
    // memory budget mid-run so the next charge fails
    let db = db_with_chain(NODES);
    let dir = temp_dir("mem");
    let config = SqloopConfig {
        max_mem: Some(64 << 20), // generous; the squeeze comes later
        checkpoint: Some(CheckpointConfig::new(&dir).every(1)),
        ..SqloopConfig::default()
    };
    let sq = sqloop_for(&db, ExecutionMode::Single, config);
    let manifest = dir.join("MANIFEST.json");
    let squeezer = {
        let db = db.clone();
        let manifest = manifest.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(30);
            while !manifest.is_file() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(manifest.is_file(), "no checkpoint appeared within 30s");
            db.set_memory_limit(Some(1));
        })
    };
    let err = sq.execute(SSSP);
    squeezer.join().unwrap();
    match err {
        Err(SqloopError::BudgetExceeded { ref what, .. }) => {
            assert!(what.contains("memory"), "{what}");
        }
        Ok(_) => {
            // the run finished before the squeeze landed — legal but the
            // test then proved nothing; fail loudly so the race is visible
            panic!("run completed before the budget squeeze; raise NODES");
        }
        other => panic!("expected a typed memory budget abort, got {other:?}"),
    }

    // the governed abort lifted the engine limit for its final snapshot
    assert!(load_latest(&dir).is_ok(), "final checkpoint must load");

    // resumed life with the budget raised: completes and matches the oracle
    let config = SqloopConfig {
        resume_from: Some(dir.clone()),
        ..SqloopConfig::default()
    };
    let resumed = sqloop_for(&db, ExecutionMode::Single, config)
        .execute(SSSP)
        .unwrap();
    assert_eq!(oracle.rows, resumed.rows, "resumed fixpoint differs");
    // spot-check the far end of the chain really converged
    let last = &resumed.rows[NODES as usize - 1];
    assert_eq!(last[0], Value::Int(NODES as i64 - 1));
    assert_eq!(last[1].as_f64().unwrap(), (NODES - 1) as f64);
    let _ = std::fs::remove_dir_all(&dir);
}
