//! Full-stack correctness: the paper's workloads executed through the
//! complete middleware (grammar → analysis → translation → parallel
//! schedulers → engine) and diffed against native in-memory oracles.

use dbcp::{Driver, LocalDriver};
use graphgen::datasets;
use sqldb::{Database, EngineProfile, Value};
use sqloop::{ExecutionMode, PrioritySpec, SQLoop, SqloopConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn setup(profile: EngineProfile, graph: &graphgen::Graph) -> (Database, Arc<LocalDriver>) {
    let db = Database::new(profile);
    let driver = Arc::new(LocalDriver::new(db.clone()));
    let mut conn = driver.connect().unwrap();
    workloads::load_edges(conn.as_mut(), graph).unwrap();
    (db, driver)
}

fn sqloop(driver: &Arc<LocalDriver>, mode: ExecutionMode, priority: PrioritySpec) -> SQLoop {
    SQLoop::new(driver.clone() as Arc<dyn Driver>).with_config(SqloopConfig {
        mode,
        threads: 2,
        partitions: 16,
        priority: Some(priority),
        ..SqloopConfig::default()
    })
}

#[test]
fn pagerank_matches_oracle_in_sync_mode() {
    let dataset = datasets::google_web_like(0.02);
    let oracle = workloads::oracle::pagerank(&dataset.graph, 15);
    let (_, driver) = setup(EngineProfile::Postgres, &dataset.graph);
    let sq = sqloop(
        &driver,
        ExecutionMode::Sync,
        PrioritySpec::highest("SELECT SUM(delta) FROM {}"),
    );
    let out = sq.execute(&workloads::queries::pagerank(15)).unwrap();
    assert_eq!(out.rows.len(), oracle.len());
    for row in &out.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let rank = row[1].as_f64().unwrap();
        let expected = oracle[&node];
        assert!(
            (rank - expected).abs() < 1e-9,
            "node {node}: sql {rank} vs oracle {expected}"
        );
    }
}

#[test]
fn sssp_matches_dijkstra_in_every_mode_and_engine() {
    let dataset = datasets::twitter_like(0.05);
    let oracle = workloads::oracle::sssp(&dataset.graph, 0);
    for profile in EngineProfile::ALL {
        for mode in [
            ExecutionMode::Single,
            ExecutionMode::Sync,
            ExecutionMode::Async,
            ExecutionMode::AsyncPrio,
        ] {
            let (_, driver) = setup(profile, &dataset.graph);
            let sq = sqloop(
                &driver,
                mode,
                PrioritySpec::lowest("SELECT MIN(delta) FROM {}"),
            );
            let out = sq.execute(&workloads::queries::sssp_all(0)).unwrap();
            for row in &out.rows {
                let node = row[0].as_i64().unwrap() as u64;
                let d = row[1].as_f64().unwrap();
                match oracle.get(&node) {
                    Some(&expected) => assert!(
                        (d - expected).abs() < 1e-9,
                        "{profile}/{mode}: node {node} distance {d} vs {expected}"
                    ),
                    None => assert!(
                        d.is_infinite(),
                        "{profile}/{mode}: node {node} should be unreachable, got {d}"
                    ),
                }
            }
        }
    }
}

#[test]
fn descendant_query_matches_bfs() {
    let dataset = datasets::berkstan_like(0.15);
    let hops_limit = 40;
    let oracle = workloads::oracle::descendants(&dataset.graph, 0, hops_limit);
    let (_, driver) = setup(EngineProfile::MariaDb, &dataset.graph);
    let sq = sqloop(
        &driver,
        ExecutionMode::Async,
        PrioritySpec::lowest("SELECT MIN(delta) FROM {}"),
    );
    let out = sq
        .execute(&workloads::queries::descendant_query(0, hops_limit))
        .unwrap();
    let got: HashMap<u64, u64> = out
        .rows
        .iter()
        .map(|r| (r[0].as_i64().unwrap() as u64, r[1].as_f64().unwrap() as u64))
        .collect();
    assert_eq!(got, oracle);
}

#[test]
fn descendant_clicks_matches_bfs_distance() {
    let dataset = datasets::berkstan_like(0.1);
    let (target, hops) = dataset.graph.node_at_distance(0, 100).unwrap();
    assert!(hops >= 50, "stand-in graph should be deep, got {hops}");
    let (_, driver) = setup(EngineProfile::Postgres, &dataset.graph);
    let sq = sqloop(
        &driver,
        ExecutionMode::AsyncPrio,
        PrioritySpec::lowest("SELECT MIN(delta) FROM {}"),
    );
    let out = sq
        .execute(&workloads::queries::descendant_clicks(0, target))
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Float(hops as f64));
}

#[test]
fn connected_components_match_oracle() {
    let g = graphgen::uniform_random(120, 200, 3);
    let oracle = workloads::oracle::connected_components(&g);
    let (_, driver) = setup(EngineProfile::Postgres, &g);
    // WCC needs the symmetrized edge view
    let mut conn = driver.connect().unwrap();
    conn.execute(
        "CREATE VIEW both_edges AS SELECT src, dst, weight FROM edges \
         UNION ALL SELECT dst AS src, src AS dst, weight FROM edges",
    )
    .unwrap();
    drop(conn);
    let sq = sqloop(
        &driver,
        ExecutionMode::Single,
        PrioritySpec::lowest("SELECT MIN(delta) FROM {}"),
    );
    let out = sq
        .execute(&workloads::queries::connected_components(200))
        .unwrap();
    for row in &out.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let comp = row[1].as_f64().unwrap() as u64;
        assert_eq!(comp, oracle[&node], "node {node}");
    }
}

#[test]
fn pagerank_identical_across_engines() {
    let dataset = datasets::google_web_like(0.02);
    let query = workloads::queries::pagerank(10);
    let mut results = Vec::new();
    for profile in EngineProfile::ALL {
        let (_, driver) = setup(profile, &dataset.graph);
        let sq = sqloop(
            &driver,
            ExecutionMode::Sync,
            PrioritySpec::highest("SELECT SUM(delta) FROM {}"),
        );
        results.push(sq.execute(&query).unwrap().rows);
    }
    // join algorithms differ per engine, so float summation order (and the
    // last ULP) may differ — compare with a tight tolerance
    for (name, other) in [("MySQL", &results[1]), ("MariaDB", &results[2])] {
        assert_eq!(results[0].len(), other.len(), "{name}");
        for (a, b) in results[0].iter().zip(other) {
            assert_eq!(a[0], b[0], "{name}");
            let (x, y) = (a[1].as_f64().unwrap(), b[1].as_f64().unwrap());
            assert!(
                (x - y).abs() <= 1e-12 * x.abs().max(1.0),
                "{name}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn delta_terminated_pagerank_converges() {
    let dataset = datasets::google_web_like(0.02);
    let (_, driver) = setup(EngineProfile::Postgres, &dataset.graph);
    let sq = sqloop(
        &driver,
        ExecutionMode::Single,
        PrioritySpec::highest("SELECT SUM(delta) FROM {}"),
    );
    let report = sq
        .execute_detailed(&workloads::queries::pagerank_until_converged(0.01))
        .unwrap();
    assert!(
        report.iterations > 3,
        "too few iterations: {}",
        report.iterations
    );
    // converged total rank ≈ node count for a closed graph
    let total: f64 = report
        .result
        .rows
        .iter()
        .map(|r| r[1].as_f64().unwrap())
        .sum();
    let n = report.result.rows.len() as f64;
    assert!((total - n).abs() / n < 0.05, "total {total} vs n {n}");
}

#[test]
fn indegree_count_workload_matches_degree() {
    let g = graphgen::uniform_random(80, 300, 9);
    let mut indeg: HashMap<u64, i64> = HashMap::new();
    for &(_, d) in g.edges() {
        *indeg.entry(d).or_insert(0) += 1;
    }
    let (_, driver) = setup(EngineProfile::MySql, &g);
    let sq = sqloop(
        &driver,
        ExecutionMode::Sync,
        PrioritySpec::highest("SELECT SUM(delta) FROM {}"),
    );
    let out = sq.execute(&workloads::queries::indegree_count()).unwrap();
    for row in &out.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let got = row[1].as_f64().unwrap() as i64;
        assert_eq!(got, *indeg.get(&node).unwrap_or(&0), "node {node}");
    }
}

#[test]
fn hits_like_falls_back_and_matches_oracle() {
    use sqloop::Strategy;
    let g = graphgen::uniform_random(40, 120, 6);
    let oracle = workloads::oracle::hits_like(&g, 3);
    let (_, driver) = setup(EngineProfile::Postgres, &g);
    let sq = sqloop(
        &driver,
        ExecutionMode::Async,
        PrioritySpec::highest("SELECT SUM(delta) FROM {}"),
    );
    let report = sq
        .execute_detailed(&workloads::queries::hits_like(3))
        .unwrap();
    // two aggregated columns → outside the parallelizable class
    match &report.strategy {
        Strategy::IterativeSingle { fallback_reason } => assert!(fallback_reason.is_some()),
        other => panic!("expected fallback, got {other:?}"),
    }
    for row in &report.result.rows {
        let node = row[0].as_i64().unwrap() as u64;
        let (auth, hub) = (row[1].as_f64().unwrap(), row[2].as_f64().unwrap());
        let (ea, eh) = oracle[&node];
        assert!((auth - ea).abs() < 1e-9, "node {node} auth {auth} vs {ea}");
        assert!((hub - eh).abs() < 1e-9, "node {node} hub {hub} vs {eh}");
    }
}
