//! Table I — the termination-condition taxonomy (paper §III-B): one live
//! demonstration per syntactic form, on a small deterministic graph,
//! reporting how many iterations each condition took to satisfy.
//!
//! Usage: `cargo run --release -p sqloop-bench --bin table1_terminations`

use sqldb::EngineProfile;
use sqloop::{ExecutionMode, SqloopConfig};
use sqloop_bench::{env_with_graph, write_csv, Table};

/// Builds a PageRank-style iterative CTE with the given termination clause.
fn pr_with_termination(tc: &str) -> String {
    format!(
        "\
WITH ITERATIVE pr(Node, Rank, Delta) AS (
  SELECT src, 0, 0.15
  FROM (SELECT src FROM edges UNION SELECT dst FROM edges) AS a GROUP BY src
  ITERATE
  SELECT pr.Node, COALESCE(pr.Rank + pr.Delta, 0.15),
         COALESCE(0.85 * SUM(ir.Delta * ie.weight), 0.0)
  FROM pr
  LEFT JOIN edges AS ie ON pr.Node = ie.dst
  LEFT JOIN pr AS ir ON ir.Node = ie.src
  GROUP BY pr.Node
  UNTIL {tc})
SELECT COUNT(*) FROM pr"
    )
}

fn main() {
    println!("== Table I: termination-condition types ==\n");
    let graph = graphgen::web_graph(300, 3, 11);
    let env = env_with_graph(EngineProfile::Postgres, &graph);

    // (type, Tc syntax, description)
    let cases: Vec<(&str, String, &str)> = vec![
        ("Metadata", "12 ITERATIONS".into(), "after n iterations"),
        // `n UPDATES` is demonstrated on a traversal (SSSP), which quiesces
        // naturally — PageRank's float deltas shrink but never stop changing
        (
            "Metadata",
            "__SSSP_0_UPDATES__".into(),
            "when Ri updates ≤ n rows",
        ),
        (
            "Data",
            "SELECT Node FROM pr WHERE Rank > 0.01".into(),
            "when expr returns |R| rows",
        ),
        (
            "Data",
            "ANY SELECT Node FROM pr WHERE Rank > 0.8".into(),
            "when expr returns at least 1 row",
        ),
        (
            "Data",
            "SELECT SUM(Rank) FROM pr > 100.0".into(),
            "when expr compares against e",
        ),
        (
            "Delta",
            "DELTA SELECT pr.Node FROM pr JOIN prdelta ON pr.Node = prdelta.Node \
             WHERE pr.Rank - prdelta.Rank < 0.01"
                .into(),
            "when expr over Rdelta returns |R| rows",
        ),
        (
            "Delta",
            "ANY DELTA SELECT pr.Node FROM pr JOIN prdelta ON pr.Node = prdelta.Node \
             WHERE pr.Rank - prdelta.Rank < 0.0001"
                .into(),
            "when expr over Rdelta returns ≥ 1 row",
        ),
        (
            "Delta",
            "DELTA SELECT SUM(pr.Rank) - SUM(prdelta.Rank) FROM pr, prdelta < 0.05".into(),
            "when expr over Rdelta compares against e",
        ),
    ];

    let mut table = Table::new(&[
        "type",
        "Tc syntax",
        "satisfied after (iterations)",
        "meaning",
    ]);
    for (kind, tc, meaning) in cases {
        let sq = env.sqloop(SqloopConfig {
            mode: ExecutionMode::Single,
            max_iterations: 500,
            ..SqloopConfig::default()
        });
        let (query, shown_tc) = if tc == "__SSSP_0_UPDATES__" {
            (workloads::queries::sssp(0, 1), "0 UPDATES".to_string())
        } else {
            (pr_with_termination(&tc), tc.clone())
        };
        let report = sq
            .execute_detailed(&query)
            .unwrap_or_else(|e| panic!("Tc `{shown_tc}`: {e}"));
        table.row(vec![
            kind.into(),
            shown_tc,
            report.iterations.to_string(),
            meaning.into(),
        ]);
    }
    println!("{}", table.render());
    if let Some(p) = write_csv("table1_terminations", &table.to_csv()) {
        println!("  wrote {}", p.display());
    }
}
